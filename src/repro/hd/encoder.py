"""HD encoders — Eq. (2a) and (2b) of the paper.

Both encoders map an input feature vector ``V ∈ R^{Div}`` to an encoded
hypervector ``H ∈ R^{Dhv}``:

* :class:`ScalarBaseEncoder` (Eq. 2a): ``H = Σ_k v_k · B_k`` — the scalar
  feature value (optionally snapped to one of ``ℓiv`` levels) directly
  scales its base hypervector.  This is the encoding the paper analyzes
  for reversibility (Eq. 9–10) and differential privacy (Eq. 11–12).
* :class:`LevelBaseEncoder` (Eq. 2b): ``H = Σ_k L_{v_k} ⊙ B_k`` — the
  feature value selects a *level hypervector* which is bound (XNOR) with
  the base hypervector.  Every addend is bipolar, which is what the
  FPGA datapath of Section III-D exploits; the paper adopts this encoding
  for the hardware implementation.

Both are deterministic functions of ``(d_in, d_hv, seed)`` so that the
trainer, the attacker, and the hardware simulator all reconstruct the
identical codebooks.

Dtype policy
------------
Encoding is float32 end-to-end: features are clipped/quantized in
float32, the ±1 codebooks are cached as float32 (``as_float``), and
``encode`` returns float32.  Level-base encodings are sums of ±1 addends
— integer-valued and far below 2²⁴ — so float32 accumulation is exact
and the bit-plane kernel (:meth:`LevelBaseEncoder.encode_packed`)
reproduces the dense result bit-for-bit.  Training and similarity
accumulate in float64 (see :class:`~repro.hd.model.HDModel`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.hd.item_memory import BaseMemory, LevelMemory
from repro.utils.rng import spawn
from repro.utils.validation import check_2d, check_positive_int

__all__ = [
    "Encoder",
    "ScalarBaseEncoder",
    "LevelBaseEncoder",
    "encoder_from_config",
    "ENCODER_KINDS",
]


class Encoder(ABC):
    """Common interface of the two paper encoders.

    Attributes
    ----------
    d_in:
        Input feature count ``Div``.
    d_hv:
        Hypervector dimensionality ``Dhv``.
    seed:
        Root seed of the codebooks.
    kind:
        ``"scalar-base"`` or ``"level-base"``; the reconstruction attack
        dispatches its decoding rule on this.
    """

    kind: str = "abstract"

    def __init__(self, d_in: int, d_hv: int, seed: int = 0):
        self.d_in = check_positive_int(d_in, "d_in")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        self.seed = int(seed)
        self.base = BaseMemory(d_in, d_hv, rng=spawn(seed, "base-hv"))

    @abstractmethod
    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode ``(n, d_in)`` features into ``(n, d_hv)`` hypervectors."""

    def encode_one(self, x: np.ndarray) -> np.ndarray:
        """Encode a single ``(d_in,)`` input to a ``(d_hv,)`` hypervector."""
        return self.encode(np.asarray(x)[None, :])[0]

    @abstractmethod
    def truncated(self, d_hv: int) -> "Encoder":
        """The same encoder restricted to the first ``d_hv`` dimensions."""

    def config(self) -> dict:
        """A JSON-safe description that rebuilds this encoder exactly.

        Codebooks are deterministic in ``(kind, d_in, d_hv, seed, …)``, so
        the config *is* the codebook — the on-disk model artifact stores
        this dict instead of megabytes of ±1 vectors.  Truncated encoders
        record their parent dimensionality (``parent_d_hv``) because a
        ``d_hv``-dimensional codebook drawn fresh differs from the first
        ``d_hv`` columns of the parent's.
        """
        cfg = {
            "kind": self.kind,
            "d_in": self.d_in,
            "d_hv": self.d_hv,
            "seed": self.seed,
            "n_levels": self.n_levels,
            "lo": self.lo,
            "hi": self.hi,
        }
        parent = getattr(self, "_parent_d_hv", self.d_hv)
        if parent != self.d_hv:
            cfg["parent_d_hv"] = parent
        return cfg


class ScalarBaseEncoder(Encoder):
    """Scalar × base encoding, Eq. (2a).

    Parameters
    ----------
    d_in, d_hv:
        Feature count and hypervector dimensionality.
    n_levels:
        If given, feature values are first snapped to ``n_levels`` uniform
        levels in ``[lo, hi]`` (the finite feature set ``F`` of Eq. 1);
        if ``None``, raw feature values are used directly.
    lo, hi:
        Feature range used both for level snapping and by the decoder to
        clip reconstructions.
    seed:
        Codebook seed.
    """

    kind = "scalar-base"

    def __init__(
        self,
        d_in: int,
        d_hv: int,
        *,
        n_levels: int | None = None,
        lo: float = 0.0,
        hi: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(d_in, d_hv, seed)
        if n_levels is not None:
            check_positive_int(n_levels, "n_levels")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        self.n_levels = n_levels
        self.lo = float(lo)
        self.hi = float(hi)

    def quantize_features(self, X: np.ndarray) -> np.ndarray:
        """Snap features to the level grid (identity when ``n_levels=None``).

        Returns float32 (the module's dtype policy) so ``encode`` feeds
        the cached float32 codebook without a second cast.
        """
        X = check_2d(X, "X", n_cols=self.d_in).astype(np.float32)
        np.clip(X, self.lo, self.hi, out=X)
        if self.n_levels is None or self.n_levels == 1:
            return X
        step = (self.hi - self.lo) / (self.n_levels - 1)
        return np.float32(self.lo) + np.rint(
            (X - np.float32(self.lo)) / np.float32(step)
        ) * np.float32(step)

    def _quantized_features(self, X: np.ndarray, native: bool | None) -> np.ndarray:
        """Level-snapped features via the NumPy or compiled path.

        ``native=None`` auto-selects the compiled kernel when available;
        ``True`` insists (raising without numba); ``False`` forces the
        NumPy reference.  Both paths are elementwise float32 and produce
        bit-identical values.
        """
        from repro.backend import native as native_kernels

        if native is None:
            native = native_kernels.kernels_available()
        if not native:
            return self.quantize_features(X)
        X = check_2d(X, "X", n_cols=self.d_in)
        snap = self.n_levels is not None and self.n_levels != 1
        step = (
            (self.hi - self.lo) / (self.n_levels - 1) if snap else None
        )
        return native_kernels.native_quantize_features(
            X, self.lo, self.hi, step
        )

    def encode(self, X: np.ndarray) -> np.ndarray:
        return self.quantize_features(X) @ self.base.as_float()

    def encode_into(
        self,
        X: np.ndarray,
        out: np.ndarray,
        *,
        col_block: int | None = None,
        native: bool | None = None,
    ) -> np.ndarray:
        """Blocked quantize-into-matmul: encode ``X`` directly into ``out``.

        Fuses the per-tile feature quantization into the projection and
        writes the BLAS product straight into the caller's buffer — no
        per-tile ``(rows, d_hv)`` temporary, no copy-out pass.  This is
        what lets the chunked streaming pipeline match (not trail) the
        single-shot ``encode`` throughput: the single-shot path allocates
        and fills the full matrix once, and so does a sequence of
        ``encode_into`` tiles.

        ``col_block`` additionally tiles the projection over codebook
        column panels (``base[:, j:j+col_block]``), keeping the output
        panel cache-resident for very large ``d_hv``; ``None`` (default)
        issues one GEMM per call, which is optimal for the usual tile
        shapes.  Blocking over columns never changes the per-element
        accumulation order, so results are identical to :meth:`encode`'s
        matmul up to BLAS kernel-shape rounding.

        ``native`` selects the compiled quantize kernel feeding the GEMM
        (``None`` auto-detects numba, ``False`` forces NumPy, ``True``
        insists); the two quantize paths are bit-identical.
        """
        Xq = self._quantized_features(X, native)
        if out.shape != (Xq.shape[0], self.d_hv):
            raise ValueError(
                f"out must have shape {(Xq.shape[0], self.d_hv)}, "
                f"got {out.shape}"
            )
        if out.dtype != np.float32:
            raise ValueError(f"out must be float32, got {out.dtype}")
        base = self.base.as_float()
        if col_block is None or col_block >= self.d_hv:
            # matmul's out= path is measurably faster than np.dot's here
            # (no output-buffer staging) and writes the product straight
            # into the caller's rows.
            np.matmul(Xq, base, out=out)
            return out
        check_positive_int(col_block, "col_block")
        for j in range(0, self.d_hv, col_block):
            sl = slice(j, min(j + col_block, self.d_hv))
            np.matmul(Xq, base[:, sl], out=out[:, sl])
        return out

    def truncated(self, d_hv: int) -> "ScalarBaseEncoder":
        out = object.__new__(ScalarBaseEncoder)
        out.d_in = self.d_in
        out.d_hv = check_positive_int(d_hv, "d_hv")
        out.seed = self.seed
        out.base = self.base.truncated(d_hv)
        out.n_levels = self.n_levels
        out.lo = self.lo
        out.hi = self.hi
        out._parent_d_hv = getattr(self, "_parent_d_hv", self.d_hv)
        return out


class LevelBaseEncoder(Encoder):
    """Level ⊙ base encoding, Eq. (2b).

    Parameters
    ----------
    d_in, d_hv:
        Feature count and hypervector dimensionality.
    n_levels:
        Number of level hypervectors (``ℓiv``, "L" in Fig. 4's legend).
    lo, hi:
        Feature range for level quantization.
    seed:
        Codebook seed; base and level memories use independent sub-streams.
    """

    kind = "level-base"

    def __init__(
        self,
        d_in: int,
        d_hv: int,
        *,
        n_levels: int = 32,
        lo: float = 0.0,
        hi: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(d_in, d_hv, seed)
        self.n_levels = check_positive_int(n_levels, "n_levels")
        self.levels = LevelMemory(
            n_levels, d_hv, lo=lo, hi=hi, rng=spawn(seed, "level-hv")
        )
        self.lo = float(lo)
        self.hi = float(hi)

    def encode(self, X: np.ndarray) -> np.ndarray:
        X = check_2d(X, "X", n_cols=self.d_in)
        idx = self.levels.indices(X)  # (n, d_in) level index per feature
        base = self.base.as_float()  # (d_in, d_hv), cached
        lvl = self.levels.as_float()  # (n_levels, d_hv), cached
        out = np.zeros((X.shape[0], self.d_hv), dtype=np.float32)
        if self.n_levels <= max(2, self.d_in // 4):
            # Binding distributes over bundling:
            #   Σ_k L[q_k] ⊙ B_k = Σ_l L_l ⊙ (Σ_{k : q_k = l} B_k)
            # so one (n, d_in) @ (d_in, d_hv) matmul per *level* replaces a
            # gather per *feature* — a large win for the usual ℓiv « Div.
            for level in range(self.n_levels):
                mask = idx == level
                if not mask.any():
                    continue
                out += (mask.astype(np.float32) @ base) * lvl[level]
        else:
            for k in range(self.d_in):
                out += lvl[idx[:, k]] * base[k]
        return out

    def _packed_operands(self, X: np.ndarray):
        """Shared packed-kernel inputs: level indices and codebook planes."""
        X = check_2d(X, "X", n_cols=self.d_in)
        idx = self.levels.indices(X)
        lvl_planes = self.levels.sign_planes()  # (n_levels, n_words)
        # XNOR(a, b) == a ^ ~b: fold the inversion into the base planes.
        inv_base = getattr(self, "_inv_base_planes", None)
        if inv_base is None:
            inv_base = ~self.base.sign_planes()
            self._inv_base_planes = inv_base
        return idx, lvl_planes, inv_base

    @staticmethod
    def _use_native(native: bool | None) -> bool:
        from repro.backend import native as native_kernels

        if native is None:
            return native_kernels.kernels_available()
        if native and not native_kernels.kernels_available():
            raise ValueError(
                "native=True needs numba, which is not installed; "
                "use native=None for automatic selection"
            )
        return bool(native)

    def encode_packed(
        self, X: np.ndarray, *, native: bool | None = None
    ) -> np.ndarray:
        """Eq. (2b) on uint64 bit planes — bit-identical to :meth:`encode`.

        Every addend ``L_{q_k} ⊙ B_k`` is bipolar, so its sign plane is
        one XOR away from the cached codebook planes (XNOR of the level
        and base sign bits), and the encoding reduces to an exact
        per-dimension count of positive addends::

            H[n, j] = 2 · #{k : addend_{k,j} = +1} − d_in

        The count runs through a carry-save
        :class:`~repro.backend.packed.BitPlaneAccumulator` — the software
        mirror of the §III-D adder tree — touching ~``d_hv/64`` words per
        feature instead of ``n_levels`` dense matmul passes, which makes
        this the fast path for the usual ``ℓiv`` ≫ 2.  Tail bits beyond
        ``d_hv`` are discarded when the counters unpack.

        ``native`` routes the counters through the numba-compiled kernel
        (:func:`~repro.backend.native.native_level_encode`): ``None``
        auto-detects numba, ``False`` forces the NumPy accumulator,
        ``True`` insists on the compiled path.  Both are integer-exact
        and bit-identical.
        """
        from repro.backend.packed import BitPlaneAccumulator

        idx, lvl_planes, inv_base = self._packed_operands(X)
        if self._use_native(native):
            from repro.backend.native import native_level_encode

            return native_level_encode(
                idx, lvl_planes, inv_base, self.d_in, self.d_hv
            )
        acc = BitPlaneAccumulator()
        for k in range(self.d_in):
            acc.add(lvl_planes[idx[:, k]] ^ inv_base[k])
        positives = acc.counts(self.d_hv)
        return (2 * positives - self.d_in).astype(np.float32)

    def encode_packed_bipolar(
        self, X: np.ndarray, *, native: bool | None = None
    ):
        """Encode and bipolar-quantize directly on bit planes — no dense tile.

        Equivalent to ``pack_hypervectors(bipolar(encode(X)))`` but the
        ``(n, d_hv)`` float tile never exists: the sign of the encoding
        ``2c − d_in`` is exactly ``c > (d_in − 1) // 2`` (the bipolar
        quantizer's 0 → +1 tie-break included), read straight off the
        vertical counters with a bitwise magnitude comparator
        (:meth:`~repro.backend.packed.BitPlaneAccumulator.greater_than`).
        Returns a :class:`~repro.backend.PackedHV` whose magnitude plane
        is all-ones over the valid dimensions (bipolar values have no
        zeros).  ``native`` selects the compiled counters as in
        :meth:`encode_packed`.
        """
        from repro.backend.packed import BitPlaneAccumulator, PackedHV, n_words

        idx, lvl_planes, inv_base = self._packed_operands(X)
        if self._use_native(native):
            from repro.backend.native import native_level_encode_signs

            signs = native_level_encode_signs(
                idx, lvl_planes, inv_base, self.d_in, self.d_hv
            )
        else:
            acc = BitPlaneAccumulator()
            for k in range(self.d_in):
                acc.add(lvl_planes[idx[:, k]] ^ inv_base[k])
            signs = acc.greater_than((self.d_in - 1) // 2)
        nw = n_words(self.d_hv)
        mags = np.full((idx.shape[0], nw), ~np.uint64(0), dtype=np.uint64)
        tail = self.d_hv % 64
        if tail:
            # The folded XNOR sets padding bits in every addend (the
            # inverted base planes are all-ones there), so the tail
            # counts are not zero — clear the padding in both planes.
            mags[:, -1] = np.uint64((1 << tail) - 1)
            signs = signs.copy()
            signs[:, -1] &= mags[0, -1]
        return PackedHV(signs=signs, mags=mags, d=self.d_hv)

    def __getstate__(self):
        # Keep worker-process pickles at codebook size (cf. item_memory).
        state = self.__dict__.copy()
        state.pop("_inv_base_planes", None)
        return state

    def encode_addends(self, x: np.ndarray) -> np.ndarray:
        """The ``d_in`` bipolar addends of one input, before summation.

        Returns the ``(d_in, d_hv)`` int8 matrix ``A[k] = L_{q_k} ⊙ B_k``
        whose column-wise sum is the encoding.  The FPGA datapath model
        consumes exactly this matrix: each output dimension is a
        majority/adder tree over one column (Fig. 7).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.d_in,):
            raise ValueError(f"x must have shape ({self.d_in},), got {x.shape}")
        idx = self.levels.indices(x[None, :])[0]
        return (self.levels.vectors[idx] * self.base.vectors).astype(np.int8)

    def truncated(self, d_hv: int) -> "LevelBaseEncoder":
        out = object.__new__(LevelBaseEncoder)
        out.d_in = self.d_in
        out.d_hv = check_positive_int(d_hv, "d_hv")
        out.seed = self.seed
        out.base = self.base.truncated(d_hv)
        out.n_levels = self.n_levels
        out.levels = self.levels.truncated(d_hv)
        out.lo = self.lo
        out.hi = self.hi
        out._parent_d_hv = getattr(self, "_parent_d_hv", self.d_hv)
        return out


#: encoder kinds reconstructible by :func:`encoder_from_config`
ENCODER_KINDS = ("scalar-base", "level-base")


def encoder_from_config(config: dict) -> Encoder:
    """Rebuild an encoder (codebooks included) from :meth:`Encoder.config`.

    The returned encoder's codebooks are bit-identical to the original's:
    they regenerate deterministically from the recorded seed, and a
    recorded ``parent_d_hv`` rebuilds the parent codebook first and
    truncates it, exactly as the original was made.
    """
    cfg = dict(config)
    kind = cfg.get("kind")
    if kind not in ENCODER_KINDS:
        raise ValueError(
            f"unknown encoder kind {kind!r}; choose from {ENCODER_KINDS}"
        )
    d_hv = int(cfg["d_hv"])
    parent_d_hv = int(cfg.get("parent_d_hv", d_hv))
    if parent_d_hv < d_hv:
        raise ValueError(
            f"parent_d_hv ({parent_d_hv}) cannot be smaller than d_hv ({d_hv})"
        )
    n_levels = cfg.get("n_levels")
    kwargs = dict(
        lo=float(cfg.get("lo", 0.0)),
        hi=float(cfg.get("hi", 1.0)),
        seed=int(cfg.get("seed", 0)),
    )
    if kind == "scalar-base":
        enc: Encoder = ScalarBaseEncoder(
            int(cfg["d_in"]),
            parent_d_hv,
            n_levels=None if n_levels is None else int(n_levels),
            **kwargs,
        )
    else:
        enc = LevelBaseEncoder(
            int(cfg["d_in"]),
            parent_d_hv,
            n_levels=32 if n_levels is None else int(n_levels),
            **kwargs,
        )
    if parent_d_hv != d_hv:
        enc = enc.truncated(d_hv)
    return enc

"""Sequence (n-gram) encoding — the temporal side of the HD substrate.

The paper's feature encoders (Eq. 2) handle fixed-length feature vectors;
the HD literature it builds on (Kanerva [11]) also encodes *sequences* —
text, event streams, sensor traces — by binding permuted symbol
hypervectors into n-grams:

    G(s_i .. s_{i+n-1}) = ρ^{n-1}(S_{s_i}) ⊙ ρ^{n-2}(S_{s_{i+1}}) ⊙ … ⊙ S_{s_{i+n-1}}

where ``ρ`` is the cyclic permutation and ``S_c`` the random bipolar
hypervector of symbol ``c``; a sequence bundles all its n-grams.  The
permutation makes binding order-sensitive ("ab" ≠ "ba"), which plain
element-wise binding is not.

The privacy machinery applies unchanged: an n-gram encoding is a ±1-sum
like Eq. (2b), so quantization (Eq. 13/14), the Gaussian mechanism and
the reconstruction analysis carry over — which is why the encoder lives
in this package even though the paper's evaluation is feature-vector
only.
"""

from __future__ import annotations

import numpy as np

from repro.hd.hypervector import permute, random_bipolar
from repro.utils.rng import RngLike, ensure_generator, spawn
from repro.utils.validation import check_positive_int

__all__ = ["SymbolMemory", "NGramEncoder"]


class SymbolMemory:
    """Random bipolar hypervector per symbol of a finite alphabet."""

    def __init__(self, n_symbols: int, d_hv: int, *, rng: RngLike = None):
        self.n_symbols = check_positive_int(n_symbols, "n_symbols")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        gen = ensure_generator(rng)
        self.vectors = random_bipolar(d_hv, n=n_symbols, rng=gen)

    def __len__(self) -> int:
        return self.n_symbols

    def __getitem__(self, symbol: int) -> np.ndarray:
        return self.vectors[symbol]

    def lookup(self, symbols: np.ndarray) -> np.ndarray:
        """Hypervectors for a symbol-index array (any shape + (d_hv,))."""
        idx = np.asarray(symbols)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_symbols):
            raise ValueError(
                f"symbols must be in [0, {self.n_symbols}), "
                f"got range [{idx.min()}, {idx.max()}]"
            )
        return self.vectors[idx]


class NGramEncoder:
    """Permutation-bound n-gram encoder for symbol sequences.

    Parameters
    ----------
    n_symbols:
        Alphabet size.
    d_hv:
        Hypervector dimensionality.
    n:
        n-gram order (≥ 1); ``n=1`` reduces to a permutation-free
        bag-of-symbols encoding.
    seed:
        Symbol-memory seed.

    Examples
    --------
    >>> enc = NGramEncoder(4, 4096, n=2, seed=0)
    >>> ab = enc.encode_one(np.array([0, 1]))
    >>> ba = enc.encode_one(np.array([1, 0]))
    >>> from repro.hd.similarity import cosine
    >>> bool(abs(cosine(ab, ba)) < 0.2)   # order matters
    True
    """

    def __init__(
        self,
        n_symbols: int,
        d_hv: int,
        *,
        n: int = 3,
        seed: int = 0,
    ):
        self.n = check_positive_int(n, "n")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        self.symbols = SymbolMemory(
            n_symbols, d_hv, rng=spawn(seed, "symbol-hv")
        )
        self.n_symbols = n_symbols
        self.seed = int(seed)

    def encode_one(self, sequence: np.ndarray) -> np.ndarray:
        """Encode one symbol-index sequence to a ``(d_hv,)`` vector.

        Sequences shorter than ``n`` are encoded as a single,
        zero-padded-free n-gram of their actual length.
        """
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.ndim != 1 or seq.size == 0:
            raise ValueError("sequence must be a non-empty 1-D index array")
        hvs = self.symbols.lookup(seq).astype(np.int32)  # (L, d_hv)
        length = seq.size
        n = min(self.n, length)
        # Pre-permute each position's hypervector by its in-gram offset:
        # gram(i) = Π_j ρ^{n-1-j}(hv[i+j]).
        permuted = [
            permute(hvs[j:], n - 1 - j) for j in range(n)
        ]
        n_grams = length - n + 1
        acc = np.ones((n_grams, self.d_hv), dtype=np.int32)
        for j in range(n):
            acc *= permuted[j][:n_grams]
        return acc.sum(axis=0).astype(np.float32)

    def encode(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Encode a batch of (variable-length) sequences."""
        if not sequences:
            raise ValueError("sequences must be non-empty")
        out = np.empty((len(sequences), self.d_hv), dtype=np.float32)
        for i, seq in enumerate(sequences):
            out[i] = self.encode_one(seq)
        return out

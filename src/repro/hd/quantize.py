"""Encoding quantizers — Eq. (13)–(14) of the paper.

Prive-HD quantizes only the *encoding* hypervectors (the class
hypervectors stay full precision), because the ℓ2 sensitivity of training
is exactly the ℓ2 norm of a single encoding.  Replacing the
approximately-Gaussian encoding values with a handful of small integers
makes that norm both small and *data-independent*:

    Δf = ‖H‖₂ = ( Σ_{k ∈ levels} p_k · Dhv · k² )^{1/2}        (Eq. 14)

where ``p_k`` is the fraction of dimensions quantized to level ``k``.

Because encoded dimensions are i.i.d., a per-row quantile rule realizes
any target level distribution exactly, independent of the input scale:

* ``bipolar``          → {−1, +1},          p = (1/2, 1/2)
* ``ternary``          → {−1, 0, +1},       p = (1/3, 1/3, 1/3)
* ``ternary-biased``   → {−1, 0, +1},       p = (1/4, 1/2, 1/4) — the
  paper's biased scheme, shrinking sensitivity by √(3/4) ≈ 0.87×
* ``2bit``             → {−2, −1, 0, +1},   p = (1/4, 1/4, 1/4, 1/4)
* ``identity``         → passthrough (full precision)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.backend.packed import PackedHV, pack_hypervectors
from repro.utils.validation import check_2d, check_positive_int

__all__ = [
    "EncodingQuantizer",
    "IdentityQuantizer",
    "BipolarQuantizer",
    "TernaryQuantizer",
    "BiasedTernaryQuantizer",
    "TwoBitQuantizer",
    "MaskedQuantizer",
    "get_quantizer",
    "QUANTIZER_NAMES",
    "empirical_level_probabilities",
]


class EncodingQuantizer(ABC):
    """Maps real-valued encodings to a small discrete level set."""

    #: short registry name, e.g. ``"ternary-biased"``
    name: str = "abstract"

    @property
    @abstractmethod
    def levels(self) -> np.ndarray:
        """The sorted quantization level values (empty for identity)."""

    @property
    @abstractmethod
    def design_probabilities(self) -> np.ndarray:
        """Intended probability of each level (empty for identity)."""

    @abstractmethod
    def __call__(self, encodings: np.ndarray) -> np.ndarray:
        """Quantize ``(n, d_hv)`` (or ``(d_hv,)``) encodings."""

    @property
    def packable(self) -> bool:
        """True when this quantizer's levels fit the bit-packed planes.

        Packable levels are exactly {−1, 0, +1}: bipolar and both ternary
        schemes pack; identity (continuous) and 2-bit (level −2) do not.
        """
        levels = self.levels
        return bool(levels.size) and bool(np.isin(levels, (-1, 0, 1)).all())

    def pack(self, encodings: np.ndarray) -> PackedHV:
        """Quantize and bit-pack in one step (packable quantizers only).

        The returned :class:`~repro.backend.PackedHV` feeds the packed
        similarity kernels directly — 64 dimensions per uint64 word, 16×
        smaller than a float32 encoding matrix.
        """
        if not self.packable:
            raise ValueError(
                f"quantizer {self.name!r} has levels "
                f"{self.levels.tolist() or '(continuous)'} outside "
                "{-1, 0, +1} and cannot be bit-packed"
            )
        # Our own output is levels-exact by construction; skip the
        # packer's validation pass.
        return pack_hypervectors(self(encodings), validate=False)

    def expected_l2_sensitivity(self, d_hv: int, d_in: int | None = None) -> float:
        """Analytic ℓ2 sensitivity of a quantized encoding, Eq. (14).

        ``d_in`` is accepted (and ignored) so that the identity quantizer
        — whose sensitivity is the full-precision Eq. (12) value
        √(Dhv·Div) — exposes the same signature.
        """
        check_positive_int(d_hv, "d_hv")
        p = self.design_probabilities
        k = self.levels.astype(np.float64)
        return float(np.sqrt(np.sum(p * d_hv * k**2)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityQuantizer(EncodingQuantizer):
    """Full-precision passthrough; sensitivity follows Eq. (12)."""

    name = "identity"

    @property
    def levels(self) -> np.ndarray:
        """Empty: a passthrough has no discrete levels."""
        return np.array([])

    @property
    def design_probabilities(self) -> np.ndarray:
        """Empty: no levels, no design distribution."""
        return np.array([])

    def __call__(self, encodings: np.ndarray) -> np.ndarray:
        return np.asarray(encodings, dtype=np.float32)

    def expected_l2_sensitivity(self, d_hv: int, d_in: int | None = None) -> float:
        check_positive_int(d_hv, "d_hv")
        if d_in is None:
            raise ValueError(
                "identity (full-precision) sensitivity needs d_in: "
                "Δf = sqrt(d_hv * d_in) per Eq. (12)"
            )
        check_positive_int(d_in, "d_in")
        return float(np.sqrt(d_hv * d_in))


class _QuantileQuantizer(EncodingQuantizer):
    """Shared machinery: cut each row at fixed quantiles.

    Sub-classes define the level values and the cumulative cut
    probabilities; dimension ``d`` of a row gets level ``j`` when its
    value falls between the row's ``cut_probs[j-1]`` and ``cut_probs[j]``
    quantiles.  Per-row cuts make the quantizer scale-free, matching the
    paper's i.i.d.-dimensions argument for Eq. (14).
    """

    _levels: tuple[float, ...] = ()
    _cut_probs: tuple[float, ...] = ()
    _design_probs: tuple[float, ...] = ()

    @property
    def levels(self) -> np.ndarray:
        return np.asarray(self._levels, dtype=np.float64)

    @property
    def design_probabilities(self) -> np.ndarray:
        return np.asarray(self._design_probs, dtype=np.float64)

    def __call__(self, encodings: np.ndarray) -> np.ndarray:
        H = np.asarray(encodings, dtype=np.float64)
        squeeze = H.ndim == 1
        H = check_2d(H, "encodings")
        cuts = np.quantile(H, self._cut_probs, axis=1)  # (n_cuts, n)
        idx = np.zeros(H.shape, dtype=np.int64)
        for c in cuts:
            idx += H > c[:, None]
        out = self.levels[idx].astype(np.float32)
        return out[0] if squeeze else out


class BipolarQuantizer(_QuantileQuantizer):
    """1-bit sign quantization, Eq. (13): ``H → sign(H)``."""

    name = "bipolar"
    _levels = (-1.0, 1.0)
    _cut_probs = (0.5,)
    _design_probs = (0.5, 0.5)

    def __call__(self, encodings: np.ndarray) -> np.ndarray:
        # The paper's Eq. (13) is literally sign(); use it directly (with
        # the deterministic 0 → +1 tie-break) rather than a median cut so
        # that single-dimension edge cases behave like hardware.
        H = np.asarray(encodings, dtype=np.float64)
        return np.where(H >= 0, 1.0, -1.0).astype(np.float32)


class TernaryQuantizer(_QuantileQuantizer):
    """Uniform ternary quantization to {−1, 0, +1}, p = 1/3 each."""

    name = "ternary"
    _levels = (-1.0, 0.0, 1.0)
    _cut_probs = (1.0 / 3.0, 2.0 / 3.0)
    _design_probs = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)


class BiasedTernaryQuantizer(_QuantileQuantizer):
    """The paper's biased ternary: p0 = 1/2, p±1 = 1/4.

    Weighting the zero level halves the number of non-zero dimensions,
    shrinking Eq. (14) by √(3/4) ≈ 0.87× relative to uniform ternary —
    the exact factor quoted in Section III-B.2.
    """

    name = "ternary-biased"
    _levels = (-1.0, 0.0, 1.0)
    _cut_probs = (0.25, 0.75)
    _design_probs = (0.25, 0.5, 0.25)


class TwoBitQuantizer(_QuantileQuantizer):
    """2-bit quantization to {−2, −1, 0, +1}, p = 1/4 each (Fig. 5)."""

    name = "2bit"
    _levels = (-2.0, -1.0, 0.0, 1.0)
    _cut_probs = (0.25, 0.5, 0.75)
    _design_probs = (0.25, 0.25, 0.25, 0.25)


class MaskedQuantizer(EncodingQuantizer):
    """A quantizer restricted to the live dimensions of a pruned model.

    The §III-B query pipeline quantizes only the dimensions that survived
    pruning — quantile cuts run over the kept dimensions, so the realized
    level proportions (and the Eq. 14 sensitivity) hold exactly at the
    live dimension count — and leaves the pruned dimensions at zero.
    Wrapping that rule as an :class:`EncodingQuantizer` lets every fused
    consumer (:meth:`~repro.hd.encode_pipeline.EncodePipeline.
    stream_quantized`, :class:`~repro.serve.InferenceEngine`) stream
    pruned-model queries without special-casing the mask.

    Masked output adds zeros to the inner level set, so a masked bipolar/
    ternary quantizer stays packable (zeros are exactly the packed 0
    level).
    """

    def __init__(self, inner: EncodingQuantizer | str, keep_mask: np.ndarray):
        self.inner = get_quantizer(inner)
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.ndim != 1:
            raise ValueError(
                f"keep_mask must be 1-D, got shape {keep.shape}"
            )
        self.keep_mask = keep
        self.name = f"masked({self.inner.name})"

    @property
    def levels(self) -> np.ndarray:
        """The inner quantizer's levels plus 0 (masked dimensions)."""
        inner = self.inner.levels
        if inner.size == 0:
            return inner
        return np.unique(np.append(inner, 0.0))

    @property
    def design_probabilities(self) -> np.ndarray:
        """The inner quantizer's design distribution (see the note)."""
        # Dimension-marginal probabilities are a mask-weighted mixture;
        # sensitivity accounting uses the inner quantizer at the live
        # count instead (expected_l2_sensitivity below).
        return self.inner.design_probabilities

    @property
    def packable(self) -> bool:
        """Packable exactly when the inner quantizer is."""
        # Identity passes values through unchanged outside the mask, so
        # it is packable only if the inner quantizer is.
        return self.inner.packable

    def __call__(self, encodings: np.ndarray) -> np.ndarray:
        H = np.asarray(encodings, dtype=np.float64)
        squeeze = H.ndim == 1
        H = check_2d(H, "encodings")
        if H.shape[1] != self.keep_mask.shape[0]:
            raise ValueError(
                f"encodings have {H.shape[1]} dims but keep_mask covers "
                f"{self.keep_mask.shape[0]}"
            )
        out = np.zeros(H.shape, dtype=np.float32)
        out[:, self.keep_mask] = self.inner(H[:, self.keep_mask])
        return out[0] if squeeze else out

    def expected_l2_sensitivity(self, d_hv: int, d_in: int | None = None) -> float:
        """Eq. (14) at the *live* dimension count (``d_hv`` ignored)."""
        return self.inner.expected_l2_sensitivity(
            int(self.keep_mask.sum()), d_in
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaskedQuantizer({self.inner.name!r}, "
            f"live={int(self.keep_mask.sum())}/{self.keep_mask.shape[0]})"
        )


_REGISTRY = {
    "identity": IdentityQuantizer,
    "none": IdentityQuantizer,
    "full": IdentityQuantizer,
    "bipolar": BipolarQuantizer,
    "binary": BipolarQuantizer,
    "ternary": TernaryQuantizer,
    "ternary-biased": BiasedTernaryQuantizer,
    "biased": BiasedTernaryQuantizer,
    "2bit": TwoBitQuantizer,
}

#: canonical names accepted by :func:`get_quantizer`
QUANTIZER_NAMES = ("identity", "bipolar", "ternary", "ternary-biased", "2bit")


def get_quantizer(name: str | EncodingQuantizer | None) -> EncodingQuantizer:
    """Resolve a quantizer by registry name (idempotent for instances).

    >>> get_quantizer("ternary-biased").name
    'ternary-biased'
    """
    if name is None:
        return IdentityQuantizer()
    if isinstance(name, EncodingQuantizer):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown quantizer {name!r}; choose from {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]()


def empirical_level_probabilities(
    quantized: np.ndarray, levels: np.ndarray
) -> np.ndarray:
    """Measured fraction of each level in a quantized encoding batch.

    Used to cross-check Eq. (14)'s design probabilities against what the
    quantizer actually produced (they match to sampling error).
    """
    q = np.asarray(quantized, dtype=np.float64).ravel()
    levels = np.asarray(levels, dtype=np.float64)
    if q.size == 0:
        raise ValueError("quantized array is empty")
    counts = np.array([(q == lv).sum() for lv in levels], dtype=np.float64)
    return counts / q.size

"""The HD classification model: class hypervectors + cosine inference.

Training (Eq. 3) bundles the encoded hypervectors of each class into one
*class hypervector*; inference (Eq. 4) returns the class whose hypervector
has the highest cosine similarity with the encoded query.  The model is a
plain ``(n_classes, d_hv)`` float array — which is precisely why it leaks:
subtracting two models trained on adjacent datasets yields the encoding of
the missing record (Section III-A).  The differential-privacy machinery in
:mod:`repro.core` operates directly on instances of this class.
"""

from __future__ import annotations

import numpy as np

from repro.backend import Backend, PackedHV, get_backend, is_packable
from repro.hd.similarity import class_scores, cosine_matrix, norm_rows
from repro.utils.rng import RngLike, ensure_generator
from repro.utils.validation import check_2d, check_labels, check_positive_int

__all__ = ["HDModel"]


class HDModel:
    """An HD classifier: one prototype hypervector per class.

    Parameters
    ----------
    n_classes:
        Number of classes ``|C|``.
    d_hv:
        Hypervector dimensionality ``Dhv``.
    class_hvs:
        Optional initial ``(n_classes, d_hv)`` array (copied); zeros when
        omitted.

    Notes
    -----
    The class store is float64: class values grow like the number of
    bundled inputs, and the DP mechanism later adds real-valued Gaussian
    noise, so integer storage would buy nothing.
    """

    def __init__(
        self,
        n_classes: int,
        d_hv: int,
        class_hvs: np.ndarray | None = None,
    ):
        self.n_classes = check_positive_int(n_classes, "n_classes")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        if class_hvs is None:
            self.class_hvs = np.zeros((n_classes, d_hv), dtype=np.float64)
        else:
            class_hvs = np.asarray(class_hvs, dtype=np.float64)
            if class_hvs.shape != (n_classes, d_hv):
                raise ValueError(
                    f"class_hvs must have shape {(n_classes, d_hv)}, "
                    f"got {class_hvs.shape}"
                )
            self.class_hvs = class_hvs.copy()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_encodings(
        cls, encodings: np.ndarray, labels: np.ndarray, n_classes: int
    ) -> "HDModel":
        """Single-pass HD training, Eq. (3): bundle encodings per class."""
        H = check_2d(encodings, "encodings")
        y = check_labels(labels, "labels", n_classes=n_classes)
        if H.shape[0] != y.shape[0]:
            raise ValueError(
                f"{H.shape[0]} encodings but {y.shape[0]} labels"
            )
        model = cls(n_classes, H.shape[1])
        model.bundle(H, y)
        return model

    def copy(self) -> "HDModel":
        """Deep copy (class store included)."""
        return HDModel(self.n_classes, self.d_hv, self.class_hvs)

    # ------------------------------------------------------------------
    # training-time mutation
    # ------------------------------------------------------------------
    def bundle(self, encodings: np.ndarray, labels: np.ndarray) -> None:
        """Add encodings into their class hypervectors (Eq. 3 / Eq. 5 '+')."""
        H = check_2d(encodings, "encodings", n_cols=self.d_hv)
        y = check_labels(labels, "labels", n_classes=self.n_classes)
        np.add.at(self.class_hvs, y, H.astype(np.float64, copy=False))
        self._invalidate()

    def unbundle(self, encodings: np.ndarray, labels: np.ndarray) -> None:
        """Subtract encodings from class hypervectors (Eq. 5 '−')."""
        H = check_2d(encodings, "encodings", n_cols=self.d_hv)
        y = check_labels(labels, "labels", n_classes=self.n_classes)
        np.subtract.at(self.class_hvs, y, H.astype(np.float64, copy=False))
        self._invalidate()

    def bundle_packed(self, packed: PackedHV, labels: np.ndarray) -> None:
        """Bundle bit-packed quantized encodings — no dense round-trip.

        Equivalent to ``bundle(packed.unpack(), labels)`` but the
        ``(n, d_hv)`` float tile never materializes: per class, the sum
        of ternary values is ``2 · #positive − #non-zero`` per column,
        and both counts come off the bit planes through carry-save
        :class:`~repro.backend.BitPlaneAccumulator` counters.  Every
        addend is ±1/0, so the integer counts are exact and the result
        matches the dense bundle bit-for-bit in float64.
        """
        from repro.backend.packed import BitPlaneAccumulator

        y = check_labels(labels, "labels", n_classes=self.n_classes)
        if packed.d != self.d_hv:
            raise ValueError(
                f"packed encodings have {packed.d} dims, model has {self.d_hv}"
            )
        if packed.n != y.shape[0]:
            raise ValueError(
                f"{packed.n} encodings but {y.shape[0]} labels"
            )
        bipolar = packed.is_bipolar
        for c in np.unique(y):
            rows = np.nonzero(y == c)[0]
            acc_pos = BitPlaneAccumulator()
            acc_nnz = None if bipolar else BitPlaneAccumulator()
            for r in rows:
                acc_pos.add(packed.signs[r : r + 1] & packed.mags[r : r + 1])
                if acc_nnz is not None:
                    acc_nnz.add(packed.mags[r : r + 1])
            pos = acc_pos.counts(self.d_hv, dtype=np.int64)[0]
            if acc_nnz is None:
                nnz = np.int64(len(rows))
            else:
                nnz = acc_nnz.counts(self.d_hv, dtype=np.int64)[0]
            self.class_hvs[c] += 2 * pos - nnz
        self._invalidate()

    def _invalidate(self) -> None:
        self._norm_cache = None

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    @property
    def class_norms(self) -> np.ndarray:
        """Cached ℓ2 norms of the class hypervectors (Eq. 4 denominator)."""
        cache = getattr(self, "_norm_cache", None)
        if cache is None:
            cache = norm_rows(self.class_hvs)
            self._norm_cache = cache
        return cache

    def _resolve_backend(self, backend, queries) -> Backend | None:
        """Pick a backend.

        Explicit choice wins.  Packed queries auto-route to the packed
        kernels when the class store is packable too — upgraded to the
        numba-compiled ``native`` backend when its kernels are available
        (answers are bit-identical); against a full-precision store (the
        §III-C host: degraded query, information-rich classes) they fall
        back to dense, which unpacks them — decisions are identical
        either way.
        """
        if backend is not None:
            return get_backend(backend)
        if not isinstance(queries, PackedHV):
            return None  # classic dense expression, zero indirection
        if is_packable(self.class_hvs):
            from repro.backend.native import kernels_available

            return get_backend("native" if kernels_available() else "packed")
        return get_backend("dense")

    def scores(self, queries, *, backend: str | Backend | None = None) -> np.ndarray:
        """Class-normalized dot products, shape ``(n, n_classes)``.

        Equivalent to cosine similarity up to the per-query norm, which is
        constant across classes and therefore dropped (paper, Eq. 4).

        ``backend`` selects the compute path (``"dense"``/``"packed"``);
        when omitted, packed queries use the packed kernels and anything
        else the dense expression.  The packed backend requires the class
        store to be bipolar/ternary (e.g. a quantized serving snapshot).

        The store is prepared on every call so direct mutation of
        ``class_hvs`` — a documented plain array — is always honored.
        For repeated high-throughput queries use
        :class:`repro.serve.InferenceEngine`, which prepares (quantizes,
        packs, precomputes norms) exactly once.
        """
        be = self._resolve_backend(backend, queries)
        if be is None:
            return class_scores(queries, self.class_hvs)
        return be.class_scores(
            be.prepare_queries(queries),
            be.prepare_class_store(self.class_hvs),
        )

    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """Fully normalized cosine similarities (used for Fig. 3)."""
        return cosine_matrix(queries, self.class_hvs)

    def predict(self, queries, *, backend: str | Backend | None = None) -> np.ndarray:
        """Predicted labels, shape ``(n,)``."""
        return np.argmax(self.scores(queries, backend=backend), axis=1)

    def accuracy(
        self,
        queries,
        labels: np.ndarray,
        *,
        backend: str | Backend | None = None,
    ) -> float:
        """Fraction of queries whose argmax class matches ``labels``."""
        y = check_labels(labels, "labels", n_classes=self.n_classes)
        preds = self.predict(queries, backend=backend)
        if preds.shape[0] != y.shape[0]:
            raise ValueError(
                f"{preds.shape[0]} queries but {y.shape[0]} labels"
            )
        if y.size == 0:
            raise ValueError("cannot score an empty batch")
        return float(np.mean(preds == y))

    # ------------------------------------------------------------------
    # privacy-related transforms (return new models)
    # ------------------------------------------------------------------
    def with_noise(self, noise_std: float, *, rng: RngLike = None) -> "HDModel":
        """A copy with i.i.d. Gaussian noise added to every class value.

        This is the Gaussian mechanism of Eq. (8); ``noise_std`` should be
        ``Δf · σ`` as produced by :mod:`repro.core.mechanism`.
        """
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        gen = ensure_generator(rng)
        noisy = self.class_hvs + gen.normal(
            0.0, noise_std, size=self.class_hvs.shape
        )
        return HDModel(self.n_classes, self.d_hv, noisy)

    def masked(self, keep_mask: np.ndarray) -> "HDModel":
        """A copy with pruned dimensions zeroed (keep_mask True = keep)."""
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (self.d_hv,):
            raise ValueError(
                f"keep_mask must have shape ({self.d_hv},), got {keep.shape}"
            )
        return HDModel(self.n_classes, self.d_hv, self.class_hvs * keep)

    def truncated(self, d_hv: int) -> "HDModel":
        """A copy restricted to the first ``d_hv`` dimensions."""
        check_positive_int(d_hv, "d_hv")
        if d_hv > self.d_hv:
            raise ValueError(f"cannot truncate {self.d_hv} dims to {d_hv}")
        return HDModel(self.n_classes, d_hv, self.class_hvs[:, :d_hv])

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HDModel(n_classes={self.n_classes}, d_hv={self.d_hv})"

"""Similarity kernels for hypervectors.

Inference in HD computing is a nearest-class search under cosine
similarity (Eq. 4 of the paper).  The paper notes the query-norm factor is
shared across classes, so class scores can be computed as a dot product
normalized only by the class norms; :func:`class_scores` implements exactly
that optimization while :func:`cosine_matrix` provides the fully normalized
quantity used for reporting "information" retention (Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d

__all__ = [
    "cosine",
    "cosine_matrix",
    "dot_matrix",
    "class_scores",
    "hamming_distance",
    "norm_rows",
]

_EPS = 1e-12


def norm_rows(matrix: np.ndarray) -> np.ndarray:
    """ℓ2 norm of each row, guarded against exact zeros."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    norms = np.linalg.norm(matrix, axis=1)
    return np.where(norms < _EPS, 1.0, norms)


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity δ(a, b) of two vectors (0 if either is zero)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(a @ b / (na * nb))


def dot_matrix(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Raw dot products, shape ``(n_queries, n_references)``."""
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    r = check_2d(references, "references", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return q @ r.T


def cosine_matrix(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities, shape ``(n_queries, n_references)``."""
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    r = check_2d(references, "references", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return (q @ r.T) / np.outer(norm_rows(q), norm_rows(r))


def class_scores(queries: np.ndarray, class_hvs: np.ndarray) -> np.ndarray:
    """Class scores with only the class-norm normalization (Eq. 4, reduced).

    Dividing by the query norm does not change the argmax over classes, so
    — exactly as the paper observes — it is dropped.  The class norms *do*
    matter because classes bundle different numbers of training inputs.
    """
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    c = check_2d(class_hvs, "class_hvs", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return (q @ c.T) / norm_rows(c)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Hamming distance between two bipolar hypervectors.

    Orthogonal bipolar vectors sit at distance 0.5; identical at 0.0.
    """
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean(a != b))

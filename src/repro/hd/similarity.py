"""Similarity kernels for hypervectors.

Inference in HD computing is a nearest-class search under cosine
similarity (Eq. 4 of the paper).  The paper notes the query-norm factor is
shared across classes, so class scores can be computed as a dot product
normalized only by the class norms; :func:`class_scores` implements exactly
that optimization while :func:`cosine_matrix` provides the fully normalized
quantity used for reporting "information" retention (Fig. 3).

The score kernels are *packed-aware*: when either operand is a
:class:`~repro.backend.PackedHV` batch (bit-packed bipolar/ternary
hypervectors), the other side is packed too and the XOR+popcount kernels
of :mod:`repro.backend.packed` answer — with results identical to the
dense expressions on the same operands.  When the dense side cannot be
packed (a full-precision class store answering degraded §III-C queries),
the packed operand is unpacked and the dense expression answers instead;
either way the result matches the all-dense computation exactly.
"""

from __future__ import annotations

import numpy as np

from repro.backend.dense import dense_hamming_matrix, guarded_norm_rows
from repro.backend.packed import (
    PackedHV,
    is_packable,
    pack_hypervectors,
    packed_class_scores,
    packed_dot_matrix,
    packed_hamming_matrix,
    packed_norms,
)
from repro.utils.validation import check_2d

__all__ = [
    "cosine",
    "cosine_matrix",
    "dot_matrix",
    "class_scores",
    "hamming_distance",
    "hamming_matrix",
    "norm_rows",
]

_EPS = 1e-12


def _as_packed_pair(a, b) -> tuple[PackedHV, PackedHV] | None:
    """Pack the dense side of a mixed packed/dense operand pair.

    Returns ``None`` when a dense operand holds values outside
    {−1, 0, +1} (e.g. a full-precision class store): the caller then
    unpacks the packed side and answers with the dense kernel instead.
    """
    for operand in (a, b):
        if not (isinstance(operand, PackedHV) or is_packable(operand)):
            return None
    # is_packable just vetted the dense side; skip the packer's re-scan.
    return (
        pack_hypervectors(a, validate=False),
        pack_hypervectors(b, validate=False),
    )


def _unpacked(x) -> np.ndarray:
    """Dense view of an operand (unpacks ``PackedHV``, passthrough else)."""
    return x.unpack(np.float64) if isinstance(x, PackedHV) else x


def norm_rows(matrix: np.ndarray) -> np.ndarray:
    """ℓ2 norm of each row, guarded against exact zeros."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    return guarded_norm_rows(matrix)


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity δ(a, b) of two vectors (0 if either is zero)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(a @ b / (na * nb))


def dot_matrix(queries, references) -> np.ndarray:
    """Raw dot products, shape ``(n_queries, n_references)``.

    Either operand may be a :class:`~repro.backend.PackedHV`; the packed
    XOR+popcount kernel then computes the exact integer dot products.
    """
    if isinstance(queries, PackedHV) or isinstance(references, PackedHV):
        pair = _as_packed_pair(queries, references)
        if pair is not None:
            return packed_dot_matrix(*pair).astype(np.float64)
        queries, references = _unpacked(queries), _unpacked(references)
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    r = check_2d(references, "references", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return q @ r.T


def cosine_matrix(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities, shape ``(n_queries, n_references)``."""
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    r = check_2d(references, "references", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return (q @ r.T) / np.outer(norm_rows(q), norm_rows(r))


def class_scores(queries, class_hvs) -> np.ndarray:
    """Class scores with only the class-norm normalization (Eq. 4, reduced).

    Dividing by the query norm does not change the argmax over classes, so
    — exactly as the paper observes — it is dropped.  The class norms *do*
    matter because classes bundle different numbers of training inputs.

    Packed operands route through the XOR+popcount kernel; on ternary
    values the result is identical to the dense expression (integer dot
    products, √(non-zero count) norms).
    """
    if isinstance(queries, PackedHV) or isinstance(class_hvs, PackedHV):
        pair = _as_packed_pair(queries, class_hvs)
        if pair is not None:
            q, c = pair
            return packed_class_scores(q, c, packed_norms(c))
        queries, class_hvs = _unpacked(queries), _unpacked(class_hvs)
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    c = check_2d(class_hvs, "class_hvs", n_cols=q.shape[1]).astype(np.float64, copy=False)
    return (q @ c.T) / norm_rows(c)


def hamming_distance(a, b) -> float:
    """Normalized Hamming distance between two bipolar hypervectors.

    Orthogonal bipolar vectors sit at distance 0.5; identical at 0.0.
    Accepts single-row :class:`~repro.backend.PackedHV` operands.
    """
    if isinstance(a, PackedHV) or isinstance(b, PackedHV):
        # Batch rejection must not depend on which fallback answers.
        for operand in (a, b):
            if isinstance(operand, PackedHV) and operand.n != 1:
                raise ValueError(
                    f"hamming_distance compares single hypervectors, got "
                    f"a batch of {operand.n}; use hamming_matrix"
                )
        pair = _as_packed_pair(a, b)
        if pair is not None:
            return float(packed_hamming_matrix(*pair)[0, 0])
        a, b = _unpacked(a), _unpacked(b)
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean(a != b))


def hamming_matrix(a, b) -> np.ndarray:
    """Pairwise normalized Hamming distances, shape ``(n_a, n_b)``.

    Dense operands are compared value-wise; packed operands go through
    the bit-plane kernel (identical results on ternary values).
    """
    if isinstance(a, PackedHV) or isinstance(b, PackedHV):
        pair = _as_packed_pair(a, b)
        if pair is not None:
            return packed_hamming_matrix(*pair)
        a, b = _unpacked(a), _unpacked(b)
    A = check_2d(a, "a")
    B = check_2d(b, "b", n_cols=A.shape[1])
    return dense_hamming_matrix(A, B)

"""Item memories: the fixed random codebooks of an HD system.

An HD encoder owns two codebooks (Eq. 1–2 of the paper):

* a **base memory** — one random bipolar *base/location* hypervector
  ``B_k`` per input feature, mutually quasi-orthogonal, which preserves
  the spatial/temporal position of each feature; and
* a **level memory** — one hypervector ``L_j`` per quantized feature
  *value*, built as a flip chain so that nearby values stay similar and
  the extreme values are orthogonal.

Both are deterministic functions of a seed, which is what makes the
encoding reproducible between the trainer, the cloud host, the attacker
(Section III-A assumes the base hypervectors are known), and the hardware
simulator.
"""

from __future__ import annotations

import numpy as np

from repro.backend.packed import pack_sign_planes
from repro.hd.hypervector import flip_chain, random_bipolar
from repro.utils.rng import RngLike, ensure_generator
from repro.utils.validation import check_2d, check_positive_int

__all__ = ["BaseMemory", "LevelMemory"]


def _cached_float(obj) -> np.ndarray:
    """float32 view of ``obj.vectors``, computed once per memory object.

    ``truncated()`` builds a fresh memory object, so derived caches never
    outlive the codebook they were computed from.
    """
    cached = getattr(obj, "_float_cache", None)
    if cached is None:
        cached = obj.vectors.astype(np.float32)
        obj._float_cache = cached
    return cached


def _cached_sign_planes(obj) -> np.ndarray:
    """uint64 sign bit planes of ``obj.vectors``, computed once (cf. above)."""
    cached = getattr(obj, "_plane_cache", None)
    if cached is None:
        cached = pack_sign_planes(obj.vectors)
        obj._plane_cache = cached
    return cached


class _DropCachesOnPickle:
    """Exclude derived caches from pickling.

    Worker processes receive one pickled encoder copy; shipping only the
    int8 codebooks (the caches rebuild in milliseconds on first use)
    keeps that payload ~5x smaller at paper scale.
    """

    _CACHE_ATTRS = ("_float_cache", "_plane_cache")

    def __getstate__(self):
        state = self.__dict__.copy()
        for attr in self._CACHE_ATTRS:
            state.pop(attr, None)
        return state


class BaseMemory(_DropCachesOnPickle):
    """The ``Div`` random base/location hypervectors of an encoder.

    Parameters
    ----------
    d_in:
        Number of input features (``Div``).
    d_hv:
        Hypervector dimensionality (``Dhv``).
    rng:
        Seed or generator fixing the codebook.

    Attributes
    ----------
    vectors:
        ``(d_in, d_hv)`` int8 bipolar array; row ``k`` is ``B_k``.
    """

    def __init__(self, d_in: int, d_hv: int, *, rng: RngLike = None):
        self.d_in = check_positive_int(d_in, "d_in")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        gen = ensure_generator(rng)
        self.vectors = random_bipolar(d_hv, n=d_in, rng=gen)

    def __getitem__(self, k: int) -> np.ndarray:
        return self.vectors[k]

    def __len__(self) -> int:
        return self.d_in

    def as_float(self) -> np.ndarray:
        """The codebook as float32 (cached), for BLAS-friendly encoding."""
        return _cached_float(self)

    def sign_planes(self) -> np.ndarray:
        """``(d_in, n_words)`` uint64 sign bit planes (cached).

        The packed level-base encode kernel XORs these against the level
        planes to form addend planes without touching floats.
        """
        return _cached_sign_planes(self)

    def truncated(self, d_hv: int) -> "BaseMemory":
        """A view-like copy restricted to the first ``d_hv`` dimensions.

        Dimension sweeps (Fig. 5, Fig. 8) re-use one 10k-dimension codebook
        and slice it, so that results across ``Dhv`` differ only in the
        retained dimensions, mirroring how the paper prunes one model.
        """
        check_positive_int(d_hv, "d_hv")
        if d_hv > self.d_hv:
            raise ValueError(f"cannot truncate {self.d_hv} dims to {d_hv}")
        out = object.__new__(BaseMemory)
        out.d_in = self.d_in
        out.d_hv = d_hv
        out.vectors = self.vectors[:, :d_hv]
        return out


class LevelMemory(_DropCachesOnPickle):
    """Flip-chain level hypervectors plus the feature-value quantizer.

    Feature values are assumed to lie in ``[lo, hi]``; :meth:`indices`
    maps them to the nearest of ``n_levels`` uniformly spaced levels
    (the set ``F`` of Eq. 1), and :attr:`vectors` holds ``L_j`` per level.

    Parameters
    ----------
    n_levels:
        Number of feature levels ``ℓiv``.
    d_hv:
        Hypervector dimensionality.
    lo, hi:
        Inclusive feature range; values outside are clipped (the datasets
        in this reproduction are normalized to [0, 1]).
    rng:
        Seed or generator fixing the codebook.
    """

    def __init__(
        self,
        n_levels: int,
        d_hv: int,
        *,
        lo: float = 0.0,
        hi: float = 1.0,
        rng: RngLike = None,
    ):
        self.n_levels = check_positive_int(n_levels, "n_levels")
        self.d_hv = check_positive_int(d_hv, "d_hv")
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        gen = ensure_generator(rng)
        self.vectors = flip_chain(n_levels, d_hv, rng=gen)

    def __len__(self) -> int:
        return self.n_levels

    def as_float(self) -> np.ndarray:
        """The level codebook as float32 (cached), for dense encoding."""
        return _cached_float(self)

    def sign_planes(self) -> np.ndarray:
        """``(n_levels, n_words)`` uint64 sign bit planes (cached)."""
        return _cached_sign_planes(self)

    def indices(self, features: np.ndarray) -> np.ndarray:
        """Quantize feature values to level indices in ``[0, n_levels)``."""
        x = np.asarray(features, dtype=np.float64)
        scaled = (np.clip(x, self.lo, self.hi) - self.lo) / (self.hi - self.lo)
        idx = np.rint(scaled * (self.n_levels - 1)).astype(np.int64)
        return idx

    def values(self, indices: np.ndarray) -> np.ndarray:
        """Map level indices back to representative feature values ``f_j``.

        This is the codomain the reconstruction attack recovers: decoding
        returns the quantized representative, not the raw feature
        (Section III-A: "we are retrieving the features, that might or
        might not be the exact raw elements").
        """
        idx = np.asarray(indices, dtype=np.float64)
        if self.n_levels == 1:
            return np.full_like(idx, (self.lo + self.hi) / 2.0)
        return self.lo + idx / (self.n_levels - 1) * (self.hi - self.lo)

    def lookup(self, features: np.ndarray) -> np.ndarray:
        """Level hypervectors for a batch of features.

        Parameters
        ----------
        features:
            ``(n, d_in)`` feature matrix.

        Returns
        -------
        numpy.ndarray
            ``(n, d_in, d_hv)`` int8 array — use sparingly, this is big.
        """
        feats = check_2d(features, "features")
        return self.vectors[self.indices(feats)]

    def truncated(self, d_hv: int) -> "LevelMemory":
        """Copy restricted to the first ``d_hv`` dimensions (cf. BaseMemory)."""
        check_positive_int(d_hv, "d_hv")
        if d_hv > self.d_hv:
            raise ValueError(f"cannot truncate {self.d_hv} dims to {d_hv}")
        out = object.__new__(LevelMemory)
        out.n_levels = self.n_levels
        out.d_hv = d_hv
        out.lo = self.lo
        out.hi = self.hi
        out.vectors = self.vectors[:, :d_hv]
        return out

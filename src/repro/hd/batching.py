"""Memory-bounded batched encoding for paper-scale runs.

At the paper's scale (60k MNIST rows × Dhv = 10,000) a single encoding
matrix costs gigabytes.  :func:`encode_in_batches` bounds the peak by
yielding fixed-size chunks, and :func:`fit_classes_batched` streams them
straight into the class store so full-precision encodings never coexist
in memory.  A pre-quantized stream of bit-packed chunks
(:class:`~repro.backend.PackedHV`) is accepted too, so an edge device —
or a cached, 16×-smaller packed encoding file — can feed training
directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.backend.packed import PackedHV
from repro.hd.encode_pipeline import EncodePipeline
from repro.hd.encoder import Encoder
from repro.hd.model import HDModel
from repro.hd.quantize import EncodingQuantizer, get_quantizer
from repro.utils.validation import check_2d, check_labels, check_positive_int

__all__ = ["encode_in_batches", "fit_classes_batched"]


def encode_in_batches(
    encoder: Encoder,
    X: np.ndarray,
    *,
    batch_size: int = 1024,
    workers: int | None = 1,
    kernel: str = "auto",
    executor: str = "thread",
) -> Iterator[tuple[slice, np.ndarray]]:
    """Yield ``(row_slice, encodings)`` chunks of at most ``batch_size``.

    A thin wrapper over :class:`~repro.hd.encode_pipeline.EncodePipeline`
    kept for its established call sites; ``workers`` and ``kernel`` pass
    straight through to the pipeline (packed level-base kernel, parallel
    tiles).

    >>> from repro.hd import ScalarBaseEncoder
    >>> import numpy as np
    >>> enc = ScalarBaseEncoder(4, 32, seed=0)
    >>> X = np.random.default_rng(0).uniform(0, 1, (10, 4))
    >>> chunks = list(encode_in_batches(enc, X, batch_size=4))
    >>> [c[1].shape[0] for c in chunks]
    [4, 4, 2]
    """
    pipeline = EncodePipeline(
        encoder,
        chunk_size=batch_size,
        workers=workers,
        kernel=kernel,
        executor=executor,
    )
    yield from pipeline.stream(X)


def fit_classes_batched(
    encoder: Encoder | None,
    X: np.ndarray | None,
    y: np.ndarray,
    n_classes: int,
    *,
    quantizer: EncodingQuantizer | str | None = None,
    batch_size: int = 1024,
    workers: int | None = 1,
    kernel: str = "auto",
    executor: str = "thread",
    stream: Iterable[tuple[slice, np.ndarray | PackedHV]] | None = None,
    d_hv: int | None = None,
) -> HDModel:
    """Single-pass training (Eq. 3) with bounded encoding memory.

    Produces a model identical (up to float accumulation order) to
    ``HDModel.from_encodings(quantize(encoder.encode(X)), y, n_classes)``
    while holding at most ``batch_size`` encodings at once.  The
    quantizers cut per-row quantiles, so per-batch and whole-matrix
    quantization give identical results.

    Parameters
    ----------
    encoder, X:
        The usual path: encode ``X`` chunk-by-chunk.  Pass ``None`` for
        both when supplying ``stream``.
    y, n_classes:
        Labels and class count.
    quantizer:
        Quantizer applied to each *dense* chunk (packed chunks are
        already quantized and are bundled as-is).
    batch_size:
        Rows encoded per chunk on the ``encoder``/``X`` path.
    workers, kernel, executor:
        Encode-pipeline knobs for the ``encoder``/``X`` path (see
        :class:`~repro.hd.encode_pipeline.EncodePipeline`); ignored with
        ``stream``.
    stream:
        Alternative input: an iterable of ``(row_slice, chunk)`` pairs
        where each chunk is a dense ``(rows, d_hv)`` array or a
        pre-quantized bit-packed :class:`~repro.backend.PackedHV` batch
        (e.g. from ``quantizer.pack`` on an edge device).  Mutually
        exclusive with ``X``.
    d_hv:
        Hypervector dimensionality — required with ``stream`` when no
        ``encoder`` is given; otherwise taken from the encoder.
    """
    if (X is None) == (stream is None):
        raise ValueError("provide exactly one of X or stream")
    y = check_labels(y, "y", n_classes=n_classes)
    q = get_quantizer(quantizer)

    if stream is None:
        if encoder is None:
            raise ValueError("the X path needs an encoder")
        X = check_2d(X, "X", n_cols=encoder.d_in)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X / y length mismatch")
        stream = encode_in_batches(
            encoder,
            X,
            batch_size=batch_size,
            workers=workers,
            kernel=kernel,
            executor=executor,
        )

    if d_hv is None:
        if encoder is None:
            raise ValueError("stream training without an encoder needs d_hv")
        d_hv = encoder.d_hv

    model = HDModel(n_classes, check_positive_int(d_hv, "d_hv"))
    row_ids = np.arange(y.shape[0])
    covered = np.zeros(y.shape[0], dtype=bool)
    for rows, chunk in stream:
        if isinstance(chunk, PackedHV):
            # Already quantized on the producer side; bundled straight
            # off the bit planes — no dense unpack round-trip.
            H = None
            n_chunk = chunk.n
        else:
            H = q(chunk)
            n_chunk = H.shape[0]
        idx = row_ids[rows]
        if n_chunk != idx.shape[0]:
            raise ValueError(
                f"stream chunk has {n_chunk} rows but its slice "
                f"selects {idx.shape[0]}"
            )
        if np.unique(idx).size != idx.size or covered[idx].any():
            raise ValueError(
                "stream covers some rows more than once "
                f"(around rows {idx[:3].tolist()})"
            )
        covered[idx] = True
        if H is None:
            model.bundle_packed(chunk, y[rows])
        else:
            model.bundle(H, y[rows])
    if not covered.all():
        raise ValueError(
            f"stream left {int((~covered).sum())} of {y.shape[0]} rows "
            "uncovered"
        )
    return model

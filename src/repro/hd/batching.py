"""Memory-bounded batched encoding for paper-scale runs.

At the paper's scale (60k MNIST rows × Dhv = 10,000) a single encoding
matrix costs gigabytes.  :func:`encode_in_batches` bounds the peak by
yielding fixed-size chunks, and :func:`fit_classes_batched` streams them
straight into the class store so full-precision encodings never coexist
in memory.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.hd.encoder import Encoder
from repro.hd.model import HDModel
from repro.hd.quantize import EncodingQuantizer, get_quantizer
from repro.utils.validation import check_2d, check_labels, check_positive_int

__all__ = ["encode_in_batches", "fit_classes_batched"]


def encode_in_batches(
    encoder: Encoder,
    X: np.ndarray,
    *,
    batch_size: int = 1024,
) -> Iterator[tuple[slice, np.ndarray]]:
    """Yield ``(row_slice, encodings)`` chunks of at most ``batch_size``.

    >>> from repro.hd import ScalarBaseEncoder
    >>> import numpy as np
    >>> enc = ScalarBaseEncoder(4, 32, seed=0)
    >>> X = np.random.default_rng(0).uniform(0, 1, (10, 4))
    >>> chunks = list(encode_in_batches(enc, X, batch_size=4))
    >>> [c[1].shape[0] for c in chunks]
    [4, 4, 2]
    """
    check_positive_int(batch_size, "batch_size")
    X = check_2d(X, "X", n_cols=encoder.d_in)
    for start in range(0, X.shape[0], batch_size):
        stop = min(start + batch_size, X.shape[0])
        yield slice(start, stop), encoder.encode(X[start:stop])


def fit_classes_batched(
    encoder: Encoder,
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    *,
    quantizer: EncodingQuantizer | str | None = None,
    batch_size: int = 1024,
) -> HDModel:
    """Single-pass training (Eq. 3) with bounded encoding memory.

    Produces a model identical (up to float accumulation order) to
    ``HDModel.from_encodings(quantize(encoder.encode(X)), y, n_classes)``
    while holding at most ``batch_size`` encodings at once.  The
    quantizers cut per-row quantiles, so per-batch and whole-matrix
    quantization give identical results.
    """
    X = check_2d(X, "X", n_cols=encoder.d_in)
    y = check_labels(y, "y", n_classes=n_classes)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X / y length mismatch")
    q = get_quantizer(quantizer)
    model = HDModel(n_classes, encoder.d_hv)
    for rows, H in encode_in_batches(encoder, X, batch_size=batch_size):
        model.bundle(q(H), y[rows])
    return model

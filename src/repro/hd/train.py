"""HD training loops: single-pass bundling and Eq. (5) retraining.

Single-pass training (Eq. 3) simply bundles encodings per class.
*Retraining* (Eq. 5) then iterates over the training set: every
mispredicted encoding is added to its true class and subtracted from the
class that wrongly won.  The paper uses retraining to recover the accuracy
lost to dimension pruning (Fig. 4) and reports that 1–2 epochs suffice.

Two update disciplines are provided:

* ``mode="batch"`` — predictions for the whole epoch are computed against
  the epoch-start model and all updates applied at once.  Fast and fully
  vectorized; this is the default used by the experiment runners.
* ``mode="online"`` — the classic per-sample rule where each update is
  visible to the next prediction; closer to the original HD literature,
  kept for fidelity and ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hd.encoder import Encoder
from repro.hd.model import HDModel
from repro.hd.quantize import EncodingQuantizer, get_quantizer
from repro.utils.rng import RngLike, ensure_generator
from repro.utils.validation import check_2d, check_labels, check_positive_int

__all__ = ["RetrainHistory", "fit_hd", "retrain", "retrain_streamed"]


@dataclass
class RetrainHistory:
    """Per-epoch record of a retraining run.

    Attributes
    ----------
    train_accuracy:
        Accuracy on the retraining set, *before* each epoch's update (so
        entry 0 is the pruned/virgin model), plus one final post-update
        entry.
    eval_accuracy:
        Same schedule on the held-out set, when one was supplied.
    best_epoch:
        Index (into ``eval_accuracy`` or ``train_accuracy``) of the best
        observed model.
    best_accuracy:
        The accuracy at ``best_epoch``.
    """

    train_accuracy: list[float] = field(default_factory=list)
    eval_accuracy: list[float] = field(default_factory=list)
    best_epoch: int = 0
    best_accuracy: float = 0.0

    @property
    def n_epochs(self) -> int:
        """Number of update epochs actually performed."""
        return max(0, len(self.train_accuracy) - 1)


def fit_hd(
    encoder: Encoder,
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    *,
    quantizer: EncodingQuantizer | str | None = None,
) -> HDModel:
    """Encode ``X`` and bundle per class — Eq. (3), optionally Eq. (13).

    When a quantizer is given the encodings are quantized *before*
    bundling, which is exactly the paper's encoding-quantized training:
    the resulting class hypervectors are still full precision, only with
    reduced dynamic range.
    """
    q = get_quantizer(quantizer)
    H = q(encoder.encode(X))
    return HDModel.from_encodings(H, y, n_classes)


def _epoch_update_batch(
    model: HDModel, H: np.ndarray, y: np.ndarray
) -> int:
    """One batch-mode Eq. (5) epoch; returns number of mispredictions."""
    preds = model.predict(H)
    wrong = preds != y
    n_wrong = int(wrong.sum())
    if n_wrong:
        model.bundle(H[wrong], y[wrong])
        model.unbundle(H[wrong], preds[wrong])
    return n_wrong


def _epoch_update_online(
    model: HDModel, H: np.ndarray, y: np.ndarray, order: np.ndarray
) -> int:
    """One online Eq. (5) epoch; returns number of mispredictions."""
    n_wrong = 0
    for i in order:
        h = H[i : i + 1]
        pred = int(model.predict(h)[0])
        if pred != y[i]:
            n_wrong += 1
            model.bundle(h, y[i : i + 1])
            model.unbundle(h, np.array([pred]))
    return n_wrong


def retrain(
    model: HDModel,
    encodings: np.ndarray,
    labels: np.ndarray,
    *,
    epochs: int = 5,
    mode: str = "batch",
    keep_mask: np.ndarray | None = None,
    eval_encodings: np.ndarray | None = None,
    eval_labels: np.ndarray | None = None,
    rng: RngLike = None,
) -> tuple[HDModel, RetrainHistory]:
    """Iterative Eq. (5) retraining; returns the *best* model seen.

    Parameters
    ----------
    model:
        Starting model (not mutated).
    encodings, labels:
        Pre-encoded training data.  Pre-encoding once outside the loop
        mirrors the paper's observation that retraining is cheap because
        the expensive encode step is not repeated.
    epochs:
        Maximum update epochs (Fig. 4 uses 20 to show saturation).
    mode:
        ``"batch"`` or ``"online"`` (see module docstring).
    keep_mask:
        Optional boolean ``(d_hv,)`` mask of *retained* dimensions.  When
        the model was pruned, updates must not resurrect pruned
        dimensions ("perpetually remain zero", Section III-B.1); the mask
        is applied to the encodings so Eq. (5) only touches live
        dimensions.
    eval_encodings, eval_labels:
        Optional held-out set used to select the best epoch.
    rng:
        Shuffle randomness for online mode.

    Returns
    -------
    (HDModel, RetrainHistory)
        Best-scoring model (on eval if given, else train) and the history.
    """
    if mode not in ("batch", "online"):
        raise ValueError(f"mode must be 'batch' or 'online', got {mode!r}")
    check_positive_int(epochs, "epochs")
    H = check_2d(encodings, "encodings", n_cols=model.d_hv).astype(np.float64)
    y = check_labels(labels, "labels", n_classes=model.n_classes)
    if keep_mask is not None:
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (model.d_hv,):
            raise ValueError(
                f"keep_mask must have shape ({model.d_hv},), got {keep.shape}"
            )
        H = H * keep
    has_eval = eval_encodings is not None and eval_labels is not None
    if has_eval:
        He = check_2d(eval_encodings, "eval_encodings", n_cols=model.d_hv)
        if keep_mask is not None:
            He = He * keep
        ye = check_labels(eval_labels, "eval_labels", n_classes=model.n_classes)

    gen = ensure_generator(rng)
    work = model.copy()
    history = RetrainHistory()

    def _record() -> float:
        train_acc = work.accuracy(H, y)
        history.train_accuracy.append(train_acc)
        if has_eval:
            eval_acc = work.accuracy(He, ye)
            history.eval_accuracy.append(eval_acc)
            return eval_acc
        return train_acc

    best = work.copy()
    best_score = _record()
    history.best_epoch = 0
    history.best_accuracy = best_score

    for epoch in range(1, epochs + 1):
        if mode == "batch":
            n_wrong = _epoch_update_batch(work, H, y)
        else:
            order = gen.permutation(H.shape[0])
            n_wrong = _epoch_update_online(work, H, y, order)
        score = _record()
        if score > best_score:
            best_score = score
            best = work.copy()
            history.best_epoch = epoch
            history.best_accuracy = score
        if n_wrong == 0:
            break

    history.best_accuracy = best_score
    return best, history


def _masked_chunks(store, keep: np.ndarray | None):
    if keep is None:
        yield from store.iter_chunks()
    else:
        for sl, H in store.iter_chunks():
            yield sl, H * keep


def _streamed_epoch_pass(
    model: HDModel, store, y: np.ndarray, keep: np.ndarray | None
) -> tuple[float, int, np.ndarray]:
    """One streaming pass: accuracy of ``model``, plus its Eq. (5) update.

    Predictions for every chunk are taken against the *same* model state
    (batch-mode semantics); the update is accumulated into a
    ``(n_classes, d_hv)`` delta and applied by the caller, so no more
    than one dense chunk is alive at a time.
    """
    delta = np.zeros((model.n_classes, model.d_hv), dtype=np.float64)
    n_wrong = 0
    n_correct = 0
    for sl, H in _masked_chunks(store, keep):
        preds = model.predict(H)
        y_chunk = y[sl]
        wrong = preds != y_chunk
        n_wrong += int(wrong.sum())
        n_correct += int((~wrong).sum())
        if wrong.any():
            Hw = H[wrong].astype(np.float64, copy=False)
            np.add.at(delta, y_chunk[wrong], Hw)
            np.subtract.at(delta, preds[wrong], Hw)
    total = n_wrong + n_correct
    return n_correct / total, n_wrong, delta


def _streamed_accuracy(
    model: HDModel, store, y: np.ndarray, keep: np.ndarray | None
) -> float:
    correct = 0
    for sl, H in _masked_chunks(store, keep):
        correct += int((model.predict(H) == y[sl]).sum())
    return correct / y.shape[0]


def retrain_streamed(
    model: HDModel,
    store,
    labels: np.ndarray,
    *,
    epochs: int = 5,
    keep_mask: np.ndarray | None = None,
    eval_store=None,
    eval_labels: np.ndarray | None = None,
) -> tuple[HDModel, RetrainHistory]:
    """Batch-mode Eq. (5) retraining over cached encoding chunks.

    The streaming twin of :func:`retrain` (``mode="batch"``): instead of
    a materialized ``(n, d_hv)`` encoding matrix it replays an
    :class:`~repro.hd.encode_pipeline.EncodedChunkStore` (or anything
    with repeatable ``iter_chunks()``), holding one dense chunk at a
    time.  On quantized (integer-valued) encodings the result — model,
    history, best-epoch selection — is identical to :func:`retrain`,
    because every dot product and class-store update is integer-exact
    regardless of accumulation order.  Each epoch also folds the
    accuracy pass and the update pass into one streaming pass.

    Parameters
    ----------
    model:
        Starting model (not mutated).
    store:
        Replayable chunk source for the retraining encodings.
    labels:
        Labels aligned with the store's row slices.
    epochs, keep_mask:
        As in :func:`retrain`.
    eval_store, eval_labels:
        Optional held-out chunk source selecting the best epoch.
    """
    check_positive_int(epochs, "epochs")
    y = check_labels(labels, "labels", n_classes=model.n_classes)
    if getattr(store, "n_rows", y.shape[0]) != y.shape[0]:
        raise ValueError(
            f"store has {store.n_rows} rows but {y.shape[0]} labels"
        )
    keep = None
    if keep_mask is not None:
        keep = np.asarray(keep_mask, dtype=bool)
        if keep.shape != (model.d_hv,):
            raise ValueError(
                f"keep_mask must have shape ({model.d_hv},), got {keep.shape}"
            )
    has_eval = eval_store is not None and eval_labels is not None
    if has_eval:
        ye = check_labels(eval_labels, "eval_labels", n_classes=model.n_classes)
        if getattr(eval_store, "n_rows", ye.shape[0]) != ye.shape[0]:
            raise ValueError(
                f"eval_store has {eval_store.n_rows} rows but "
                f"{ye.shape[0]} eval_labels"
            )

    work = model.copy()
    history = RetrainHistory()

    def _record(train_acc: float) -> float:
        history.train_accuracy.append(train_acc)
        if has_eval:
            eval_acc = _streamed_accuracy(work, eval_store, ye, keep)
            history.eval_accuracy.append(eval_acc)
            return eval_acc
        return train_acc

    best = work.copy()
    best_score = -np.inf
    for epoch in range(epochs + 1):
        train_acc, n_wrong, delta = _streamed_epoch_pass(work, store, y, keep)
        score = _record(train_acc)
        if score > best_score:
            best_score = score
            best = work.copy()
            history.best_epoch = epoch
            history.best_accuracy = score
        if epoch == epochs:
            break
        if n_wrong == 0:
            # Mirror retrain(): the epoch that discovers a clean sweep
            # still records its (unchanged) accuracies before stopping.
            _record(train_acc)
            break
        work.class_hvs += delta
        work._invalidate()

    history.best_accuracy = best_score
    return best, history

"""The hyperdimensional-computing substrate (Section II-A of the paper).

Everything Prive-HD builds on lives here: bipolar hypervector algebra,
the base/level item memories, the two encoders of Eq. (2), single-pass
training (Eq. 3), cosine inference (Eq. 4), Eq. (5) retraining, the
encoding quantizers of Eq. (13)–(14) and less-effectual-dimension pruning.
"""

from repro.hd.batching import encode_in_batches, fit_classes_batched
from repro.hd.encode_pipeline import (
    ENCODE_KERNELS,
    EncodedChunkStore,
    EncodePipeline,
    LazyEncodedStream,
)
from repro.hd.encoder import (
    ENCODER_KINDS,
    Encoder,
    LevelBaseEncoder,
    ScalarBaseEncoder,
    encoder_from_config,
)
from repro.hd.hypervector import (
    bind,
    bundle,
    flip,
    flip_chain,
    permute,
    random_bipolar,
    to_bipolar,
)
from repro.hd.item_memory import BaseMemory, LevelMemory
from repro.hd.model import HDModel
from repro.hd.prune import (
    SCORE_METHODS,
    apply_mask,
    dimension_scores,
    prune_mask,
    prune_model,
)
from repro.hd.quantize import (
    QUANTIZER_NAMES,
    BiasedTernaryQuantizer,
    BipolarQuantizer,
    EncodingQuantizer,
    IdentityQuantizer,
    MaskedQuantizer,
    TernaryQuantizer,
    TwoBitQuantizer,
    empirical_level_probabilities,
    get_quantizer,
)
from repro.hd.sequence import NGramEncoder, SymbolMemory
from repro.hd.similarity import (
    class_scores,
    cosine,
    cosine_matrix,
    dot_matrix,
    hamming_distance,
    hamming_matrix,
    norm_rows,
)
from repro.hd.train import RetrainHistory, fit_hd, retrain, retrain_streamed

__all__ = [
    "Encoder",
    "ScalarBaseEncoder",
    "LevelBaseEncoder",
    "ENCODER_KINDS",
    "encoder_from_config",
    "NGramEncoder",
    "SymbolMemory",
    "encode_in_batches",
    "fit_classes_batched",
    "ENCODE_KERNELS",
    "EncodePipeline",
    "EncodedChunkStore",
    "LazyEncodedStream",
    "BaseMemory",
    "LevelMemory",
    "HDModel",
    "RetrainHistory",
    "fit_hd",
    "retrain",
    "retrain_streamed",
    "random_bipolar",
    "flip",
    "flip_chain",
    "bind",
    "bundle",
    "permute",
    "to_bipolar",
    "cosine",
    "cosine_matrix",
    "dot_matrix",
    "class_scores",
    "hamming_distance",
    "hamming_matrix",
    "norm_rows",
    "EncodingQuantizer",
    "IdentityQuantizer",
    "BipolarQuantizer",
    "TernaryQuantizer",
    "BiasedTernaryQuantizer",
    "TwoBitQuantizer",
    "MaskedQuantizer",
    "get_quantizer",
    "QUANTIZER_NAMES",
    "empirical_level_probabilities",
    "SCORE_METHODS",
    "dimension_scores",
    "prune_mask",
    "prune_model",
    "apply_mask",
]

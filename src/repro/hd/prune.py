"""Model pruning — Section III-B.1 of the paper.

Prediction is a normalized dot product (Eq. 4), so class-hypervector
dimensions whose values are close to zero contribute little ("less
effectual" dimensions).  Because information is spread uniformly across
an encoded query, dropping those dimensions loses only the query
information that was multiplying near-zeros anyway — unlike DNN weights,
whose small values can be amplified by large activations (the paper's
contrast).

Pruning serves two purposes in Prive-HD:

* it reduces ``Dhv`` in the sensitivity Δf ∝ √Dhv (Eq. 12/14), shrinking
  the DP noise required for a given (ε, δ); and
* masked query dimensions never leave the edge device, reducing the
  information available to reconstruction (Section III-C).

The pruned dimensions "perpetually remain zero": retraining
(:func:`repro.hd.train.retrain` with ``keep_mask``) only updates live
dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.hd.model import HDModel
from repro.utils.rng import spawn
from repro.utils.validation import check_2d, check_probability

__all__ = [
    "dimension_scores",
    "prune_mask",
    "prune_model",
    "apply_mask",
    "mask_from_seed",
    "SCORE_METHODS",
]


def mask_from_seed(d_hv: int, n_masked: int, mask_seed: int) -> np.ndarray:
    """The deterministic random keep-mask of a §III-C deployment.

    The inference defense zeroes a *fixed* random subset of dimensions,
    chosen once per deployment from ``mask_seed`` — this is the one
    canonical derivation, shared by the client-side
    :class:`~repro.core.inference_privacy.InferenceObfuscator` and the
    serving :class:`~repro.serve.ModelArtifact` (which records the seed
    so remote clients can regenerate exactly the served mask).

    Parameters
    ----------
    d_hv:
        Hypervector dimensionality.
    n_masked:
        Dimensions to zero (``0 <= n_masked < d_hv``).
    mask_seed:
        Deployment seed; equal seeds give bit-identical masks.

    Returns
    -------
    ``(d_hv,)`` bool array, ``True`` on the live dimensions.
    """
    if not 0 <= n_masked < d_hv:
        raise ValueError(
            f"n_masked must be in [0, d_hv={d_hv}), got {n_masked}"
        )
    keep = np.ones(d_hv, dtype=bool)
    if n_masked > 0:
        gen = spawn(mask_seed, "inference-mask")
        keep[gen.permutation(d_hv)[:n_masked]] = False
    return keep

#: supported per-dimension effectuality scores
SCORE_METHODS = ("l2", "sum_abs", "min_abs", "max_abs")


def dimension_scores(class_hvs: np.ndarray, method: str = "l2") -> np.ndarray:
    """Effectuality score of each hypervector dimension.

    Parameters
    ----------
    class_hvs:
        ``(n_classes, d_hv)`` class store (a single class row also works
        for the per-class analysis of Fig. 3).
    method:
        How to aggregate magnitude across classes:

        * ``"l2"``      — √Σ_c C[c,d]² (default; favours dimensions that
          are strong for at least one class),
        * ``"sum_abs"`` — Σ_c |C[c,d]|,
        * ``"min_abs"`` — min_c |C[c,d]| (a dimension is only as useful
          as its weakest class),
        * ``"max_abs"`` — max_c |C[c,d]|.

    Returns
    -------
    numpy.ndarray
        ``(d_hv,)`` non-negative scores; low score ⇒ prune first.
    """
    C = check_2d(class_hvs, "class_hvs").astype(np.float64, copy=False)
    if method == "l2":
        return np.sqrt(np.sum(C**2, axis=0))
    if method == "sum_abs":
        return np.sum(np.abs(C), axis=0)
    if method == "min_abs":
        return np.min(np.abs(C), axis=0)
    if method == "max_abs":
        return np.max(np.abs(C), axis=0)
    raise ValueError(f"method must be one of {SCORE_METHODS}, got {method!r}")


def prune_mask(scores: np.ndarray, fraction: float) -> np.ndarray:
    """Boolean keep-mask that prunes the lowest-scoring ``fraction``.

    Ties at the threshold are broken by index so that exactly
    ``round(fraction * d_hv)`` dimensions are pruned, making sweeps
    monotone in ``fraction``.

    >>> prune_mask(np.array([3.0, 1.0, 2.0, 4.0]), 0.5).tolist()
    [True, False, False, True]
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {s.shape}")
    check_probability(fraction, "fraction")
    n_prune = int(round(fraction * s.size))
    keep = np.ones(s.size, dtype=bool)
    if n_prune == 0:
        return keep
    order = np.argsort(s, kind="stable")
    keep[order[:n_prune]] = False
    return keep


def apply_mask(encodings: np.ndarray, keep_mask: np.ndarray) -> np.ndarray:
    """Zero the pruned dimensions of a batch of encodings (copy)."""
    H = np.asarray(encodings, dtype=np.float64)
    keep = np.asarray(keep_mask, dtype=bool)
    if H.shape[-1] != keep.shape[0]:
        raise ValueError(
            f"mask length {keep.shape[0]} != encoding dim {H.shape[-1]}"
        )
    return H * keep


def prune_model(
    model: HDModel, fraction: float, *, method: str = "l2"
) -> tuple[HDModel, np.ndarray]:
    """Prune the ``fraction`` least-effectual dimensions of a model.

    Returns
    -------
    (HDModel, numpy.ndarray)
        The pruned model (new object) and the boolean keep-mask, which
        callers pass to :func:`repro.hd.train.retrain` and to the query
        pipeline so pruned dimensions are never computed/transmitted.
    """
    scores = dimension_scores(model.class_hvs, method=method)
    keep = prune_mask(scores, fraction)
    return model.masked(keep), keep

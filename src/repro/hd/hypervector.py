"""Bipolar hypervector primitives.

Hyperdimensional (HD) computing represents symbols and values as very long
(Dhv ≈ 10,000) random vectors.  Prive-HD uses *bipolar* hypervectors, i.e.
elements drawn from {−1, +1}; two independently drawn hypervectors are
quasi-orthogonal (cosine similarity ≈ 0, concentrated as 1/√Dhv).

This module provides the generation primitives used by the item memories
(:mod:`repro.hd.item_memory`) plus the three classic HD operators:

* :func:`bind` — element-wise multiplication, creates a vector dissimilar
  to both operands (used by the level-base encoding, Eq. 2b of the paper);
* :func:`bundle` — element-wise addition, creates a vector similar to all
  operands (used to build class hypervectors, Eq. 3);
* :func:`permute` — cyclic shift, an order-encoding operator kept for API
  completeness with the broader HD literature.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_generator, RngLike
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "random_bipolar",
    "flip",
    "flip_chain",
    "bind",
    "bundle",
    "permute",
    "to_bipolar",
]


def random_bipolar(
    d_hv: int,
    n: int | None = None,
    *,
    rng: RngLike = None,
    dtype: np.dtype = np.int8,
) -> np.ndarray:
    """Draw uniform random bipolar hypervector(s) in {−1, +1}.

    Parameters
    ----------
    d_hv:
        Hypervector dimensionality (``Dhv`` in the paper).
    n:
        If given, return ``n`` stacked hypervectors of shape ``(n, d_hv)``;
        otherwise a single ``(d_hv,)`` vector.
    rng:
        Seed or generator; see :func:`repro.utils.rng.ensure_generator`.
    dtype:
        Output dtype; ``int8`` keeps the large item memories compact.

    Returns
    -------
    numpy.ndarray
        Array with entries in {−1, +1}.
    """
    check_positive_int(d_hv, "d_hv")
    gen = ensure_generator(rng)
    shape = (d_hv,) if n is None else (check_positive_int(n, "n"), d_hv)
    return (gen.integers(0, 2, size=shape, dtype=np.int8) * 2 - 1).astype(dtype, copy=False)


def flip(hv: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Return a copy of ``hv`` with the given positions sign-flipped."""
    out = np.array(hv, copy=True)
    out[indices] = -out[indices]
    return out


def flip_chain(
    n_levels: int,
    d_hv: int,
    *,
    rng: RngLike = None,
    span: float = 0.5,
    dtype: np.dtype = np.int8,
) -> np.ndarray:
    """Build the correlated *level* hypervectors of the paper (Eq. 1–2).

    ``L0`` is random; each subsequent level flips a fresh block of
    ``span * d_hv / (n_levels - 1)`` positions, sampled **without
    replacement across the whole chain** so that similarity decays
    monotonically and the first and last levels end up with
    ``2 * span * d_hv`` differing positions.  With the default
    ``span = 0.5`` (the paper's ``Dhv / (2 ℓiv)`` flips per step), ``L0``
    and ``L(ℓ−1)`` are exactly orthogonal in expectation.

    Parameters
    ----------
    n_levels:
        Number of quantization levels ``ℓiv`` (≥ 1).
    d_hv:
        Hypervector dimensionality.
    rng:
        Seed or generator.
    span:
        Fraction of dimensions flipped across the full chain; 0.5 yields
        orthogonal endpoints.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_levels, d_hv)`` bipolar array.
    """
    check_positive_int(n_levels, "n_levels")
    check_positive_int(d_hv, "d_hv")
    check_probability(span, "span")
    gen = ensure_generator(rng)

    levels = np.empty((n_levels, d_hv), dtype=dtype)
    levels[0] = random_bipolar(d_hv, rng=gen, dtype=dtype)
    if n_levels == 1:
        return levels

    total_flips = int(round(span * d_hv))
    order = gen.permutation(d_hv)[:total_flips]
    # Split the flip budget into n_levels-1 nearly equal contiguous blocks.
    boundaries = np.linspace(0, total_flips, n_levels, dtype=np.int64)
    for lvl in range(1, n_levels):
        block = order[boundaries[lvl - 1]: boundaries[lvl]]
        levels[lvl] = flip(levels[lvl - 1], block)
    return levels


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise binding (XNOR in the bipolar domain).

    For bipolar operands this is exactly the dimension-wise XNOR the paper
    uses to combine level and base hypervectors in Eq. (2b).
    """
    return np.multiply(a, b)


def bundle(hvs: np.ndarray, axis: int = 0) -> np.ndarray:
    """Bundle (superpose) hypervectors by summation along ``axis``.

    The result is *not* re-quantized: Prive-HD's class hypervectors keep
    full precision (Eq. 3) — quantization, when requested, is applied to
    the encodings *before* bundling (Eq. 13).
    """
    hvs = np.asarray(hvs)
    return hvs.sum(axis=axis, dtype=np.int64 if np.issubdtype(hvs.dtype, np.integer) else None)


def permute(hv: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclic permutation ρ of a hypervector (rightward ``shift``)."""
    return np.roll(hv, shift, axis=-1)


def to_bipolar(array: np.ndarray) -> np.ndarray:
    """Map an arbitrary real array to {−1, +1} by sign, with 0 → +1.

    The deterministic tie-break keeps repeated calls idempotent, which the
    hardware model relies on (ties in the LUT-6 majority are broken by a
    *predetermined* pattern per the paper, not fresh randomness).
    """
    out = np.where(np.asarray(array) >= 0, 1, -1).astype(np.int8)
    return out

"""Prive-HD reproduction: privacy-preserved hyperdimensional computing.

Reproduction of B. Khaleghi, M. Imani, T. Rosing, *"Prive-HD:
Privacy-Preserved Hyperdimensional Computing"*, DAC 2020.

The package is organized as::

    repro.hd          the HD learning substrate (encoders, model, train)
    repro.backend     pluggable similarity backends (dense, bit-packed)
    repro.serve       serving: engine, artifacts, registry, micro-batching,
                      the typed ServingAPI and the socket frontend
    repro.proto       the versioned wire protocol of the serving boundary
    repro.client      the trusted edge client (encode + obfuscate locally)
    repro.data        synthetic ISOLET / MNIST / FACE dataset substrate
    repro.attacks     reconstruction + membership attacks, quality metrics
    repro.core        the paper's contribution: DP training & private inference
    repro.hardware    bit-accurate FPGA datapath model + cost/perf models
    repro.experiments one runner per paper figure/table

The most common entry points are re-exported here; see ``README.md`` for a
quickstart.
"""

__version__ = "1.1.0"

from repro.backend import PackedHV, get_backend, pack_hypervectors
from repro.hd import (
    HDModel,
    LevelBaseEncoder,
    ScalarBaseEncoder,
    fit_hd,
    get_quantizer,
    prune_model,
    retrain,
)
from repro.serve import InferenceEngine

__all__ = [
    "__version__",
    "HDModel",
    "ScalarBaseEncoder",
    "LevelBaseEncoder",
    "InferenceEngine",
    "PackedHV",
    "fit_hd",
    "retrain",
    "prune_model",
    "get_quantizer",
    "get_backend",
    "pack_hypervectors",
]

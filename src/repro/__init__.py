"""Prive-HD reproduction: privacy-preserved hyperdimensional computing.

Reproduction of B. Khaleghi, M. Imani, T. Rosing, *"Prive-HD:
Privacy-Preserved Hyperdimensional Computing"*, DAC 2020.

The package is organized as::

    repro.hd          the HD learning substrate (encoders, model, train)
    repro.data        synthetic ISOLET / MNIST / FACE dataset substrate
    repro.attacks     reconstruction + membership attacks, quality metrics
    repro.core        the paper's contribution: DP training & private inference
    repro.hardware    bit-accurate FPGA datapath model + cost/perf models
    repro.experiments one runner per paper figure/table

The most common entry points are re-exported here; see ``README.md`` for a
quickstart.
"""

__version__ = "1.0.0"

from repro.hd import (
    HDModel,
    LevelBaseEncoder,
    ScalarBaseEncoder,
    fit_hd,
    get_quantizer,
    prune_model,
    retrain,
)

__all__ = [
    "__version__",
    "HDModel",
    "ScalarBaseEncoder",
    "LevelBaseEncoder",
    "fit_hd",
    "retrain",
    "prune_model",
    "get_quantizer",
]

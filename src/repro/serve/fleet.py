"""Million-model multi-tenancy: a tenant-keyed fleet of tiny models.

Prive-HD's whole point is that the privacy-preserving model is *small* —
a packed ternary class store for 26 classes x d_hv=10,000 is ~65 KB — so
one host can plausibly keep 10^4..10^5 **per-user personalized** models
warm.  Everything below :mod:`repro.serve.fleet` serves versions of one
model; this module turns that into a real fleet:

* :class:`ModelFleet` — a tenant-keyed facade over many
  :class:`~repro.serve.ModelRegistry` namespaces with a byte-budgeted
  LRU artifact cache.  Tenants are registered *lazily* (a path, not a
  load), admitted on first use with ``mmap=True`` + checksum
  verification, and evicted oldest-first when resident store bytes
  exceed the budget; a later request re-admits from the recorded path,
  checksums re-verified.  Hot tenants can be pinned.  Counters live in
  :class:`FleetStats`.
* :class:`FleetAPI` — the protocol surface (same duck type as
  :class:`~repro.serve.ServingAPI`, so :class:`~repro.serve.ServingFrontend`
  serves either) that routes protocol-v4 ``tenant`` keys.  A request
  without a tenant hits the fleet's default tenant, which is how v3
  clients keep working unchanged; an unknown key raises
  :class:`~repro.serve.TenantNotFound` (the non-retryable
  ``"unknown-tenant"`` wire code).
* **Cross-tenant coalescing** — tenants whose artifacts share an
  encoder config (same ``d_hv``/quantizer/live-dimension count, packed
  store) share one micro-batch scheduler: each query row rides the
  queue as ``[signs | mags | tenant_index]``, and one flush scores the
  whole mixed-tenant batch with a single fused gather kernel
  (:func:`fused_tenant_scores`) instead of one kernel call per tenant.
  Tenants with unique configs fall back to per-tenant flushes, exactly
  as correct, just not amortized.

    >>> fleet = ModelFleet.from_dir("artifacts/fleet", cache_bytes=64 << 20)
    >>> with FleetAPI(fleet) as api:
    ...     api.predict(packed_queries, tenant="user-1234")
    ...     api.stats()["fleet"]          # hits/misses/evictions/bytes

``prive-hd serve --fleet-dir DIR --cache-bytes N`` is the CLI spelling;
``PriveHDClient(..., tenant="user-1234")`` is the remote one.

Tenant isolation is **routing-level, not cryptographic**: every tenant's
bits are scored by the same process, and the tenant key itself is plain
UTF-8 on the wire (see ``docs/privacy-model.md``).  What stays private
is exactly what stays private for a single model: raw features and
codebooks never leave the client.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backend.packed import PackedHV, n_words, popcount
from repro.proto.messages import (
    ModelInfo,
    ScoreBatchRequest,
    ScoreBatchResponse,
    ScoreRequest,
    ScoreResponse,
)
from repro.serve.api import ServingAPI
from repro.serve.artifact import ModelArtifact
from repro.serve.errors import TenantNotFound
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicroBatchConfig, MicroBatchScheduler

__all__ = [
    "DEFAULT_TENANT",
    "FleetStats",
    "ModelFleet",
    "FleetAPI",
    "fused_tenant_scores",
]

#: Tenant name a request without a ``tenant`` key resolves to — the
#: bridge that keeps protocol v1-v3 peers (which cannot spell a tenant)
#: working against a fleet-enabled server.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class FleetStats:
    """A point-in-time snapshot of the fleet's cache counters.

    Attributes
    ----------
    tenants:
        Registered tenant count (resident or not).
    resident_models:
        Tenants whose engine is currently in memory.
    resident_bytes:
        Bytes of prepared class-store currently resident, the quantity
        the LRU budget bounds.
    pinned:
        Tenants exempt from eviction.
    hits:
        Requests that found their tenant resident.
    misses:
        Requests (or flush-time re-resolutions) that had to admit the
        tenant from disk — each one paid an mmap load + checksum pass.
    evictions:
        Tenants pushed out by the byte budget since the fleet started.
    """

    tenants: int
    resident_models: int
    resident_bytes: int
    pinned: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` — 1.0 before any traffic."""
        total = self.hits + self.misses
        if total == 0:
            return 1.0
        return self.hits / total

    def as_dict(self) -> dict:
        """JSON-safe mapping (what the HTTP ``/stats`` adapter emits)."""
        return {
            "tenants": self.tenants,
            "resident_models": self.resident_models,
            "resident_bytes": self.resident_bytes,
            "pinned": self.pinned,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class _Tenant:
    """Mutable per-tenant record (internal; guarded by the fleet lock)."""

    __slots__ = (
        "name",
        "path",
        "model",
        "pin",
        "engine_kwargs",
        "registry",
        "resident_bytes",
        "requests",
        "index",
        "evictable",
        "coalesce_key",
    )

    def __init__(self, name, path, model, pin, engine_kwargs, index):
        self.name = name
        self.path = path
        self.model = model
        self.pin = pin
        self.engine_kwargs = engine_kwargs
        self.registry: ModelRegistry | None = None
        self.resident_bytes = 0
        self.requests = 0
        self.index = index
        # No recorded path means no way back after eviction: keep it.
        self.evictable = path is not None
        self.coalesce_key: tuple | None = None


def _engine_coalesce_key(engine) -> tuple | None:
    """The shared-config group an engine can be batch-scored with.

    Two tenants coalesce into one flush only when a single fused kernel
    call can score both: same ``d_hv`` (identical plane width), same
    class count (uniform score width), same query quantizer (the rows
    mean the same thing), same live-dimension count (same mask shape,
    even though each tenant's mask_seed — and thus *which* dimensions
    are live — differs).  Only packed ternary/bipolar stores qualify;
    dense stores return ``None`` and score per-tenant.
    """
    if not isinstance(engine.prepared.store, PackedHV):
        return None
    mask = engine.keep_mask
    n_live = engine.d_hv if mask is None else int(np.count_nonzero(mask))
    quantizer = engine.quantizer.name if engine.quantizer is not None else None
    return (engine.d_hv, engine.n_classes, quantizer, n_live)


def fused_tenant_scores(
    q_signs: np.ndarray,
    q_mags: np.ndarray,
    store_signs: np.ndarray,
    store_mags: np.ndarray,
    norms: np.ndarray,
    tenant_of_row: np.ndarray,
) -> np.ndarray:
    """Score a mixed-tenant packed batch in one fused kernel call.

    The cross-tenant coalescing kernel: instead of T calls to
    :func:`~repro.backend.packed.packed_class_scores` (one per tenant in
    the flush), the per-tenant class stores are stacked into
    ``(U, C, W)`` plane tensors and every query row gathers its own
    tenant's planes by index — one vectorized XOR + popcount pass over
    the whole batch.

    Parameters
    ----------
    q_signs, q_mags:
        ``(N, W)`` uint64 query bit planes (the wire layout).
    store_signs, store_mags:
        ``(U, C, W)`` uint64 stacked class-store planes of the U unique
        tenants present in this flush.
    norms:
        ``(U, C)`` per-tenant class norms
        (:func:`~repro.backend.packed.packed_norms` of each store).
    tenant_of_row:
        ``(N,)`` index into the U axis for every query row.

    Returns
    -------
    ``(N, C)`` float64 scores, bit-for-bit identical to scoring each
    row against its own tenant with ``packed_class_scores`` — same
    ternary dot (``popcount(Ma & Mb) - 2 popcount((Sa ^ Sb) & Ma & Mb)``,
    exact integers), same class-norm division.
    """
    t = np.asarray(tenant_of_row, dtype=np.intp)
    # (N, C, W): each row gathers its tenant's planes, then one fused
    # pass.  Agreeing live dims minus disagreeing live dims, as ints.
    common = q_mags[:, None, :] & store_mags[t]
    disagree = (q_signs[:, None, :] ^ store_signs[t]) & common
    dots = popcount(common).sum(axis=2, dtype=np.int64) - 2 * popcount(
        disagree
    ).sum(axis=2, dtype=np.int64)
    return dots.astype(np.float64) / norms[t]


class ModelFleet:
    """A tenant-keyed model fleet with a byte-budgeted LRU cache.

    Each tenant owns a private :class:`~repro.serve.ModelRegistry`
    namespace (its own versions, its own hot-swap), registered lazily:
    :meth:`add_tenant` records the artifact *path* and nothing loads
    until the first request.  Admission maps the tensors with
    ``mmap=True`` and verifies checksums once; eviction (oldest
    unpinned tenant first, whenever resident bytes exceed
    ``cache_bytes``) drops the registry outright, and the next request
    re-admits from the recorded path with checksums re-verified — disk
    is the source of truth, memory is a cache.

    Thread-safe: resolution, admission, and eviction may race freely
    across request threads and flush runners.  Admission loads run
    *off*-lock (a slow disk must not stall every other tenant) with a
    double-checked install, so two racing threads may both load but
    exactly one result wins.

    Parameters
    ----------
    cache_bytes:
        Resident class-store byte budget (``None`` = unbounded).  A
        single tenant is always allowed residency even if it alone
        exceeds the budget — a budget that can serve nothing is a
        misconfiguration, not a steady state.
    default_tenant:
        Tenant served when a request carries no tenant key (what every
        pre-v4 client is).  ``None`` = the first tenant added.
    """

    def __init__(
        self,
        *,
        cache_bytes: int | None = None,
        default_tenant: str | None = None,
    ):
        if cache_bytes is not None and cache_bytes <= 0:
            raise ValueError(f"cache_bytes must be > 0, got {cache_bytes}")
        self.cache_bytes = cache_bytes
        self.default_tenant = default_tenant
        self._lock = threading.RLock()
        self._tenants: dict[str, _Tenant] = {}
        self._by_index: list[_Tenant] = []
        self._lru: OrderedDict[str, None] = OrderedDict()
        self._resident_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dir(
        cls,
        fleet_dir: str | Path,
        *,
        cache_bytes: int | None = None,
        default_tenant: str | None = None,
        model: str = "model",
    ) -> "ModelFleet":
        """A fleet from a directory of per-tenant artifact directories.

        Every subdirectory of ``fleet_dir`` containing a
        ``manifest.json`` becomes a tenant named after the subdirectory
        (sorted order).  Nothing is loaded here — registration is lazy,
        so a 10k-tenant directory costs a directory listing, not 10k
        checksum passes.  The default tenant is ``default_tenant`` if
        given, else a subdirectory literally named ``"default"``, else
        the first tenant in sorted order.
        """
        root = Path(fleet_dir)
        if not root.is_dir():
            raise FileNotFoundError(f"fleet dir {root} does not exist")
        names = sorted(
            entry.name
            for entry in root.iterdir()
            if entry.is_dir() and (entry / "manifest.json").is_file()
        )
        if not names:
            raise ValueError(
                f"fleet dir {root} holds no artifact subdirectories"
            )
        if default_tenant is None:
            default_tenant = (
                DEFAULT_TENANT if DEFAULT_TENANT in names else names[0]
            )
        fleet = cls(cache_bytes=cache_bytes, default_tenant=default_tenant)
        for name in names:
            fleet.add_tenant(name, root / name, model=model)
        return fleet

    def add_tenant(
        self,
        tenant: str,
        source: str | Path | ModelArtifact,
        *,
        model: str = "model",
        pin: bool = False,
        engine_kwargs: dict | None = None,
    ) -> None:
        """Register one tenant; loading is deferred to first use.

        ``source`` is normally an artifact directory path — recorded,
        not loaded, so registering a million tenants is cheap and the
        LRU cache decides what is actually resident.  An in-memory
        :class:`~repro.serve.ModelArtifact` is admitted immediately and
        is never evicted (there is no path to reload it from).
        ``pin=True`` exempts a hot tenant from eviction.
        """
        with self._lock:
            if tenant in self._tenants:
                raise ValueError(f"tenant {tenant!r} already registered")
            if isinstance(source, ModelArtifact):
                record = _Tenant(
                    tenant, None, model, pin, engine_kwargs,
                    len(self._by_index),
                )
                registry = ModelRegistry()
                registry.publish(model, source, engine_kwargs=engine_kwargs)
                self._install(record, registry)
            else:
                record = _Tenant(
                    tenant, Path(source), model, pin, engine_kwargs,
                    len(self._by_index),
                )
            self._tenants[tenant] = record
            self._by_index.append(record)
            if self.default_tenant is None:
                self.default_tenant = tenant

    # ------------------------------------------------------------------
    # resolution (the hot path)
    # ------------------------------------------------------------------
    def resolve(self, tenant: str | None = None, *, count: bool = True) -> _Tenant:
        """The tenant's record with a live registry, admitting if needed.

        ``None`` resolves to the default tenant.  Raises
        :class:`~repro.serve.TenantNotFound` for keys the fleet does
        not host.  ``count=True`` (the request path) bumps the tenant's
        traffic counter and the hit/miss stats; flush runners
        re-resolve with ``count=False`` so one request is not counted
        twice (an eviction between submit and flush still counts its
        re-admission as a miss — that load was real).
        """
        name = self.default_tenant if tenant is None else tenant
        with self._lock:
            record = self._tenants.get(name) if name is not None else None
            if record is None:
                raise TenantNotFound(
                    f"tenant {name!r} is not hosted by this fleet "
                    f"({len(self._tenants)} tenants registered)",
                    tenant=name,
                )
            if count:
                record.requests += 1
            if record.registry is not None:
                if count:
                    self._hits += 1
                if record.name in self._lru:
                    self._lru.move_to_end(record.name)
                return record
        self._admit(record)
        return record

    def _admit(self, record: _Tenant) -> None:
        """Load a non-resident tenant (off-lock) and install it.

        ``verify=True`` on every admission: the first load checks the
        manifest checksums once, and — because eviction throws the
        whole registry away — a post-eviction reload re-verifies
        lazily, exactly when the bytes come back off disk.  Two racing
        admissions both load; the lock decides one winner and the loser
        is dropped (correct, just briefly wasteful — preferable to
        serializing every tenant's disk I/O behind one lock).
        """
        registry = ModelRegistry()
        registry.load(
            record.model,
            record.path,
            engine_kwargs=record.engine_kwargs,
            mmap=True,
            verify=True,
        )
        with self._lock:
            if record.registry is None:
                self._misses += 1
                self._install(record, registry)

    def _install(self, record: _Tenant, registry: ModelRegistry) -> None:
        """Make a loaded registry resident (lock held by caller)."""
        engine = registry.describe(record.model).engine
        record.registry = registry
        record.resident_bytes = int(engine.store_nbytes)
        record.coalesce_key = _engine_coalesce_key(engine)
        self._resident_bytes += record.resident_bytes
        self._lru[record.name] = None
        self._lru.move_to_end(record.name)
        self._evict_to_budget(keep=record.name)

    def _evict_to_budget(self, *, keep: str) -> None:
        """Evict oldest unpinned tenants until under budget (lock held)."""
        if self.cache_bytes is None:
            return
        while self._resident_bytes > self.cache_bytes:
            victim = next(
                (
                    name
                    for name in self._lru  # oldest-first iteration
                    if name != keep
                    and self._tenants[name].evictable
                    and not self._tenants[name].pin
                ),
                None,
            )
            if victim is None:
                return  # only pinned/unreloadable/just-admitted remain
            record = self._tenants[victim]
            del self._lru[victim]
            self._resident_bytes -= record.resident_bytes
            record.registry = None
            record.resident_bytes = 0
            self._evictions += 1

    def record_by_index(self, index: int) -> _Tenant:
        """The tenant record behind a coalesced row's index column."""
        with self._lock:
            return self._by_index[index]

    def registry_for(self, tenant: str | None = None) -> ModelRegistry:
        """The tenant's live registry (admitting it if evicted).

        This is the hot-swap entry point: ``load``/``promote`` on the
        returned registry swaps that one tenant's model with zero
        dropped requests, exactly as for a single-model server.
        """
        return self.resolve(tenant, count=False).registry

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def pin(self, tenant: str) -> None:
        """Exempt a (registered) tenant from LRU eviction."""
        with self._lock:
            record = self._tenants.get(tenant)
            if record is None:
                raise TenantNotFound(
                    f"cannot pin unknown tenant {tenant!r}", tenant=tenant
                )
            record.pin = True

    def unpin(self, tenant: str) -> None:
        """Make a pinned tenant evictable again (budget re-checked lazily)."""
        with self._lock:
            record = self._tenants.get(tenant)
            if record is None:
                raise TenantNotFound(
                    f"cannot unpin unknown tenant {tenant!r}", tenant=tenant
                )
            record.pin = False

    def tenants(self) -> tuple[str, ...]:
        """Every registered tenant name, in registration order."""
        with self._lock:
            return tuple(self._tenants)

    def resident_tenants(self) -> tuple[str, ...]:
        """Tenants currently holding memory, oldest-LRU first."""
        with self._lock:
            return tuple(self._lru)

    def is_resident(self, tenant: str) -> bool:
        """Whether the tenant's engine is in memory right now."""
        with self._lock:
            record = self._tenants.get(tenant)
            return record is not None and record.registry is not None

    def top_tenants(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` busiest tenants as ``(name, requests)``, descending."""
        with self._lock:
            ranked = sorted(
                ((r.name, r.requests) for r in self._tenants.values()),
                key=lambda item: (-item[1], item[0]),
            )
        return ranked[: max(0, int(n))]

    def stats(self) -> FleetStats:
        """A consistent :class:`FleetStats` snapshot."""
        with self._lock:
            return FleetStats(
                tenants=len(self._tenants),
                resident_models=len(self._lru),
                resident_bytes=self._resident_bytes,
                pinned=sum(1 for r in self._tenants.values() if r.pin),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ModelFleet({s.tenants} tenants, {s.resident_models} resident, "
            f"{s.resident_bytes} bytes, default={self.default_tenant!r})"
        )


class _FleetNames:
    """Just enough registry duck-type for the frontend's handshake.

    The frontend's ``Welcome`` lists ``api.registry.names()``; for a
    fleet the useful listing is the tenants, capped so a million-tenant
    fleet does not turn the handshake frame into a directory dump.
    """

    #: Welcome-frame listing cap; the ``/tenants`` HTTP endpoint serves
    #: the full count.
    CAP = 32

    def __init__(self, fleet: ModelFleet):
        self._fleet = fleet

    def names(self) -> tuple[str, ...]:
        """Up to :data:`CAP` tenant names (default tenant always first)."""
        tenants = self._fleet.tenants()
        default = self._fleet.default_tenant
        if default in tenants:
            tenants = (default, *(t for t in tenants if t != default))
        return tenants[: self.CAP]


class FleetAPI:
    """The typed serving surface of a :class:`ModelFleet`.

    Duck-types :class:`~repro.serve.ServingAPI` — ``submit_score`` /
    ``submit_score_batch`` / ``info`` / ``health`` / ``models`` /
    ``stats`` — so :class:`~repro.serve.ServingFrontend` serves a fleet
    through the exact same dispatch path as a single model.  Three
    things are fleet-specific:

    * requests route by their protocol-v4 ``tenant`` key (absent =
      default tenant); unknown keys raise
      :class:`~repro.serve.TenantNotFound`;
    * with ``coalesce=True`` (default), tenants sharing a coalesce key
      (see :func:`fused_tenant_scores`) share one scheduler — a flush
      scores a mixed-tenant batch in one fused kernel call and scatters
      per-tenant results, which is where the fleet's throughput at high
      tenant counts comes from;
    * ``stats()`` carries the fleet cache counters next to the
      scheduler counters, and :meth:`tenants_summary` backs the
      read-only ``/tenants`` HTTP endpoint.

    Parameters
    ----------
    fleet:
        The tenant store (and LRU cache) to serve.
    config:
        Micro-batching flush policy shared by every scheduler.
    coalesce:
        ``False`` forces per-tenant flushes even for shared-config
        tenants — the benchmark's baseline, and an escape hatch.
    """

    def __init__(
        self,
        fleet: ModelFleet,
        *,
        config: MicroBatchConfig | None = None,
        coalesce: bool = True,
    ):
        self.fleet = fleet
        self.config = config or MicroBatchConfig()
        self.coalesce = coalesce
        self.registry = _FleetNames(fleet)
        self._lock = threading.Lock()
        self._schedulers: dict[tuple, MicroBatchScheduler] = {}
        # (scheduler key [+ tenant for group keys]) -> version that
        # answered the latest flush; written in the flusher thread,
        # read by response-future callbacks in that same thread.
        self._flush_versions: dict[tuple, int] = {}
        self._closed = False

    @property
    def default_model(self) -> str | None:
        """The default tenant's name (health/ops symmetry with ServingAPI)."""
        return self.fleet.default_tenant

    # ------------------------------------------------------------------
    # submission plumbing
    # ------------------------------------------------------------------
    def _scheduler(self, key: tuple, make_runner) -> MicroBatchScheduler:
        with self._lock:
            if self._closed:
                raise RuntimeError("fleet API is closed")
            sched = self._schedulers.get(key)
            if sched is None:
                sched = MicroBatchScheduler(
                    make_runner(key), self.config, name=".".join(map(str, key))
                )
                self._schedulers[key] = sched
            return sched

    def _run_group(self, rows: np.ndarray, key: tuple) -> np.ndarray:
        """Flush runner for a shared-config, mixed-tenant scheduler.

        ``rows`` is ``[signs | mags | tenant_index]`` (all uint64).
        Resolves every tenant present *at flush time* — an eviction
        between submit and flush re-admits here, a hot-swap lands here —
        stacks their class stores, and makes one fused kernel call.
        """
        want_scores = key[-1]
        words = (rows.shape[1] - 1) // 2
        indices = rows[:, -1].astype(np.int64)
        unique, inverse = np.unique(indices, return_inverse=True)
        engines = []
        for index in unique:
            record = self.fleet.record_by_index(int(index))
            registry = self.fleet.resolve(record.name, count=False).registry
            described = registry.describe(record.model)
            engines.append(described.engine)
            self._flush_versions[key + (record.name,)] = described.version
        signs = rows[:, :words]
        mags = rows[:, words:-1]
        store_signs = np.stack([e.prepared.store.signs for e in engines])
        store_mags = np.stack([e.prepared.store.mags for e in engines])
        norms = np.stack([e.prepared.norms for e in engines])
        scores = fused_tenant_scores(
            signs, mags, store_signs, store_mags, norms, inverse
        )
        if want_scores:
            return scores
        return np.argmax(scores, axis=1)

    def _run_tenant(self, rows: np.ndarray, key: tuple) -> np.ndarray:
        """Flush runner for one tenant's private scheduler.

        ``key`` is ``("tenant", tenant, model, kind, want_scores)``
        where ``kind`` is ``"packed"`` (plane rows, rebuilt per flush
        exactly like :meth:`ModelServer._run_packed`) or ``"dense"``.
        """
        _, tenant, model, kind, want_scores = key
        registry = self.fleet.resolve(tenant, count=False).registry
        described = registry.describe(model)
        engine = described.engine
        self._flush_versions[key] = described.version
        if kind == "packed":
            words = n_words(engine.d_hv)
            if rows.shape[1] != 2 * words:
                raise ValueError(
                    f"plane rows have {rows.shape[1]} words but tenant "
                    f"{tenant!r} serves d_hv={engine.d_hv}"
                )
            queries = PackedHV(
                signs=np.ascontiguousarray(rows[:, :words]),
                mags=np.ascontiguousarray(rows[:, words:]),
                d=engine.d_hv,
            )
            if engine.backend.name != "packed":
                queries = queries.unpack(np.float32)
        else:
            queries = rows
        if want_scores:
            return engine.scores(queries)
        return engine.predict(queries)

    def _submit_queries(self, queries, tenant, model, want_scores, d_hv,
                        deadline):
        """Resolve tenant + model, shape-check, enqueue once.

        Returns ``(name, version_key, submit_version, raw_future)``.
        Raises :class:`~repro.serve.TenantNotFound` for unknown
        tenants, ``KeyError`` for unknown models *within* a hosted
        tenant, ``ValueError`` for shape mismatches, and the scheduler's
        :class:`~repro.serve.Overloaded` /
        :class:`~repro.serve.DeadlineExceeded` — the frontend maps each
        to its typed wire code.
        """
        record = self.fleet.resolve(tenant)
        name = model if model is not None else record.model
        described = record.registry.describe(name)
        engine = described.engine
        if d_hv != engine.d_hv:
            raise ValueError(
                f"queries have {d_hv} dimensions but tenant "
                f"{record.name!r} model {name!r} serves {engine.d_hv}"
            )
        packed = isinstance(queries, PackedHV)
        coalescable = (
            self.coalesce
            and packed
            and record.coalesce_key is not None
            and name == record.model
        )
        if coalescable:
            key = ("group",) + record.coalesce_key + (bool(want_scores),)
            index_column = np.full(
                (queries.n, 1), record.index, dtype=np.uint64
            )
            rows = np.concatenate(
                [queries.signs, queries.mags, index_column], axis=1
            )
            sched = self._scheduler(key, lambda k: (
                lambda batch: self._run_group(batch, k)
            ))
            version_key = key + (record.name,)
        else:
            kind = "packed" if packed else "dense"
            key = ("tenant", record.name, name, kind, bool(want_scores))
            if packed:
                rows = np.concatenate([queries.signs, queries.mags], axis=1)
            else:
                rows = np.atleast_2d(np.asarray(queries))
            sched = self._scheduler(key, lambda k: (
                lambda batch: self._run_tenant(batch, k)
            ))
            version_key = key
        raw = sched.submit(rows, deadline=deadline)
        return name, version_key, described.version, raw

    def _finish_response(self, raw: Future, version_key, submit_version,
                         build) -> Future:
        """Chain a raw scheduler future into a typed-response future.

        ``build(result, version)`` runs in the flusher thread right
        after the flush that scored the rows, so the recorded flush
        version is exactly the version that answered (falling back to
        the version seen at submit before any flush has run).
        """
        response: Future = Future()
        response.set_running_or_notify_cancel()

        def _finish(fut: Future):
            exc = fut.exception()
            if exc is not None:
                response.set_exception(exc)
                return
            result = fut.result()
            try:
                version = self._flush_versions.get(
                    version_key, submit_version
                )
                resp = build(result, version)
            except Exception as build_exc:  # noqa: BLE001 — forwarded
                response.set_exception(build_exc)
                return
            response.set_result(resp)

        raw.add_done_callback(_finish)
        return response

    # ------------------------------------------------------------------
    # typed protocol entry points (what the frontend calls)
    # ------------------------------------------------------------------
    def score(self, request: ScoreRequest) -> ScoreResponse:
        """Answer one typed request synchronously."""
        return self.submit_score(request).result()

    def score_batch(self, request: ScoreBatchRequest) -> ScoreBatchResponse:
        """Answer one typed batch request synchronously."""
        return self.submit_score_batch(request).result()

    def submit_score(
        self, request: ScoreRequest, *, deadline: float | None = None
    ) -> Future:
        """Answer one typed request; resolves to a :class:`ScoreResponse`.

        Routed by ``request.tenant`` (``None`` = default tenant);
        otherwise identical semantics to
        :meth:`~repro.serve.ServingAPI.submit_score`, including
        deadline handling and the flushed-version label.
        """
        name, version_key, submit_version, raw = self._submit_queries(
            request.queries, request.tenant, request.model,
            request.want_scores, request.d_hv,
            ServingAPI._resolve_deadline(request, deadline),
        )

        def build(result, version):
            if request.want_scores:
                scores = np.atleast_2d(np.asarray(result))
                return ScoreResponse(
                    predictions=np.argmax(scores, axis=1),
                    scores=scores,
                    model=name,
                    version=version,
                    request_id=request.request_id,
                )
            return ScoreResponse(
                predictions=np.atleast_1d(np.asarray(result)),
                model=name,
                version=version,
                request_id=request.request_id,
            )

        return self._finish_response(raw, version_key, submit_version, build)

    def submit_score_batch(
        self, request: ScoreBatchRequest, *, deadline: float | None = None
    ) -> Future:
        """Answer one v2 batch frame for one tenant; one scheduler submit.

        The stacked sub-requests all belong to ``request.tenant`` — a
        batch frame is one client's pipelining amplifier, and one
        client is one tenant.  Cross-*tenant* coalescing happens a
        layer down, where the shared-config scheduler stacks many
        tenants' (batch) submissions into one flush.
        """
        name, version_key, submit_version, raw = self._submit_queries(
            request.queries, request.tenant, request.model,
            request.want_scores, request.d_hv,
            ServingAPI._resolve_deadline(request, deadline),
        )

        def build(result, version):
            if request.want_scores:
                scores = np.atleast_2d(np.asarray(result))
                return ScoreBatchResponse(
                    predictions=np.argmax(scores, axis=1),
                    counts=request.counts,
                    scores=scores,
                    model=name,
                    version=version,
                    request_id=request.request_id,
                )
            return ScoreBatchResponse(
                predictions=np.atleast_1d(np.asarray(result)),
                counts=request.counts,
                model=name,
                version=version,
                request_id=request.request_id,
            )

        return self._finish_response(raw, version_key, submit_version, build)

    def predict(self, queries, *, tenant: str | None = None,
                model: str | None = None) -> np.ndarray:
        """Labels for one tenant's queries (sync convenience)."""
        return self.score(
            ScoreRequest(queries=queries, model=model, tenant=tenant)
        ).predictions

    def scores(self, queries, *, tenant: str | None = None,
               model: str | None = None) -> np.ndarray:
        """Class scores for one tenant's queries (sync convenience)."""
        return self.score(
            ScoreRequest(
                queries=queries, model=model, tenant=tenant,
                want_scores=True,
            )
        ).scores

    def info(
        self,
        model: str | None = None,
        *,
        request_id: int = 0,
        tenant: str | None = None,
    ) -> ModelInfo:
        """A typed :class:`~repro.proto.ModelInfo` for one tenant's model.

        The per-tenant ``mask_seed`` travels here exactly as for a
        single-model server — each tenant's clients adopt *their*
        tenant's mask, nobody else's.
        """
        record = self.fleet.resolve(tenant)
        name = model if model is not None else record.model
        described = record.registry.describe(name)
        engine = described.engine
        artifact = described.artifact
        if artifact is not None:
            n_live = artifact.n_live_dims
            quantizer = artifact.query_quantizer
            epsilon = artifact.epsilon
            mask_seed = artifact.mask_seed
        else:
            mask = engine.keep_mask
            n_live = engine.d_hv if mask is None else int(mask.sum())
            quantizer = (
                engine.quantizer.name if engine.quantizer is not None else None
            )
            epsilon = float("inf")
            mask_seed = None
        return ModelInfo(
            name=name,
            version=described.version,
            n_classes=engine.n_classes,
            d_hv=engine.d_hv,
            n_live_dims=n_live,
            backend=engine.backend.name,
            query_quantizer=quantizer,
            epsilon=epsilon,
            mask_seed=mask_seed,
            request_id=request_id,
        )

    # ------------------------------------------------------------------
    # ops endpoints (JSON-safe — the HTTP adapter returns these verbatim)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + fleet summary for load balancers and probes."""
        stats = self.fleet.stats()
        return {
            "status": "ok" if stats.tenants else "empty",
            "models": stats.resident_models,
            "default_model": self.fleet.default_tenant,
            "tenants": stats.tenants,
            "resident_models": stats.resident_models,
        }

    def models(self) -> dict:
        """Every *resident* tenant's model summary.

        Deliberately residents-only: a 10^5-tenant fleet's ``/models``
        should describe what is serving from memory, not enumerate the
        disk.  ``/tenants`` carries the full count.
        """
        out = {}
        for tenant in self.fleet.resident_tenants():
            record = self.fleet.resolve(tenant, count=False)
            registry = record.registry
            if registry is None:  # pragma: no cover - eviction race
                continue
            described = registry.describe(record.model)
            engine = described.engine
            out[tenant] = {
                "model": record.model,
                "current_version": described.version,
                "n_classes": engine.n_classes,
                "d_hv": engine.d_hv,
                "backend": engine.backend.name,
                "resident_bytes": record.resident_bytes,
                "pinned": record.pin,
            }
        return out

    def stats(self) -> dict:
        """Scheduler counters plus the fleet cache counters.

        The ``"fleet"`` key is the satellite the HTTP ``/stats``
        endpoint surfaces: hits, misses, evictions, resident_bytes,
        resident_models (see :meth:`FleetStats.as_dict`).
        """
        with self._lock:
            schedulers = {
                ".".join(map(str, key)): sched.stats
                for key, sched in self._schedulers.items()
            }
        out = {"fleet": self.fleet.stats().as_dict(), "schedulers": {}}
        for key, stats in schedulers.items():
            out["schedulers"][key] = {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "cancelled": stats.cancelled,
                "rejected": stats.rejected,
                "expired": stats.expired,
                "flushes": stats.flushes,
                "mean_batch_rows": stats.mean_batch_rows,
                "max_batch_rows": stats.max_batch_rows,
                "flushes_by_trigger": dict(stats.flushes_by_trigger),
            }
        return out

    def tenants_summary(self, top: int = 10) -> dict:
        """The read-only ``/tenants`` payload: count + top-N by traffic."""
        stats = self.fleet.stats()
        return {
            "count": stats.tenants,
            "resident": stats.resident_models,
            "default_tenant": self.fleet.default_tenant,
            "top": [
                {"tenant": name, "requests": requests}
                for name, requests in self.fleet.top_tenants(top)
                if requests > 0
            ],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop every scheduler; further submissions raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            schedulers = list(self._schedulers.values())
            self._schedulers.clear()
        for sched in schedulers:
            sched.close()

    def __enter__(self) -> "FleetAPI":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FleetAPI({self.fleet!r}, coalesce={self.coalesce}, "
            f"schedulers={len(self._schedulers)})"
        )

"""The batched inference engine — a prepared model that answers queries.

The cloud-offload scenario of §III-C has a hosted model answering a
stream of (possibly obfuscated) query hypervectors.  Serving from the
raw :class:`~repro.hd.model.HDModel` repeats per-query work that only
needs doing once: quantizing the class store, packing it into bit
planes, and computing the Eq. (4) norm denominators.
:class:`InferenceEngine` does all of that at construction and then
answers queries in fixed-size batches, so peak memory stays bounded no
matter how large a batch a client sends.

    >>> from repro.serve import InferenceEngine
    >>> engine = InferenceEngine(model, backend="packed", quantizer="bipolar")
    >>> engine.predict(client_queries)            # dense or PackedHV batch

With ``backend="packed"`` the class store lives as uint64 sign/magnitude
planes and every similarity is XOR + popcount — several times the dense
throughput at paper scale (measure it: ``python benchmarks/
bench_throughput.py --backend both``).  Decisions are bit-for-bit
identical to dense on the same quantized operands.
"""

from __future__ import annotations

import numpy as np

from repro.backend import Backend, PackedBackend, PackedHV, get_backend
from repro.hd.encode_pipeline import EncodePipeline
from repro.hd.encoder import Encoder
from repro.hd.model import HDModel
from repro.hd.quantize import MaskedQuantizer, get_quantizer
from repro.utils.validation import check_labels, check_positive_int

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """A prepared (quantized, packed, norm-precomputed) serving model.

    Parameters
    ----------
    model:
        The trained :class:`~repro.hd.model.HDModel`.  The engine takes a
        snapshot of its class store; later mutation of ``model`` does not
        affect the engine.
    backend:
        ``"dense"`` (default), ``"packed"``, ``"native"`` (compiled
        packed kernels, NumPy fallback when numba is absent), or a
        :class:`Backend` instance.  The packed-operand backends require
        the (possibly quantized) class store to be bipolar/ternary.
    quantizer:
        Optional quantizer name/instance applied to the **class store**
        before preparation (e.g. ``"bipolar"`` serves the 1-bit model of
        §III-C/III-D).  ``None`` serves the store as trained.
    batch_size:
        Maximum queries scored at once; larger client batches are
        chunked transparently.
    encoder:
        Optional :class:`~repro.hd.encoder.Encoder` matching the model's
        ``d_hv``.  When given, the ``*_features`` methods accept raw
        ``(n, d_in)`` features and stream them through a fused
        encode → quantize (→ pack) pipeline, so serving raw features
        never materializes more than one encoded tile.
    encode_workers, chunk_size, encode_executor:
        Encode-pipeline knobs (see
        :class:`~repro.hd.encode_pipeline.EncodePipeline`); only used
        with ``encoder``.  Pick ``encode_executor="process"`` to
        parallelize the GIL-bound packed level-base kernel.
    store_is_quantized:
        Declare the model's class store already in its serving
        representation — e.g. loaded from a
        :class:`~repro.serve.ModelArtifact`, whose store was quantized
        once at save time.  The store is prepared as-is (re-applying a
        quantile quantizer to its own output is not idempotent in
        general), while ``quantizer`` still shapes raw-feature queries.
    keep_mask:
        Live-dimension mask of a pruned (§III-B) model.  Raw-feature
        queries are quantized over the live dimensions only and zeroed
        elsewhere — the exact training-time query pipeline
        (:class:`~repro.hd.quantize.MaskedQuantizer`).  Encoded-query
        entry points (``predict``/``scores``) expect the caller to have
        masked already, as the obfuscator does.

    Attributes
    ----------
    queries_served, batches_served:
        Cumulative serving counters (cheap observability for the
        throughput benchmarks and the micro-batching server).
    """

    def __init__(
        self,
        model: HDModel,
        *,
        backend: str | Backend | None = None,
        quantizer=None,
        batch_size: int = 8192,
        encoder: Encoder | None = None,
        encode_workers: int | None = 1,
        chunk_size: int | None = None,
        encode_executor: str = "thread",
        store_is_quantized: bool = False,
        keep_mask=None,
    ):
        self.backend = get_backend(backend)
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.quantizer = None if quantizer is None else get_quantizer(quantizer)
        self.n_classes = model.n_classes
        self.d_hv = model.d_hv
        self.store_is_quantized = bool(store_is_quantized)
        if keep_mask is not None:
            keep_mask = np.asarray(keep_mask, dtype=bool)
            if keep_mask.shape != (model.d_hv,):
                raise ValueError(
                    f"keep_mask must have shape ({model.d_hv},), "
                    f"got {keep_mask.shape}"
                )
        self.keep_mask = keep_mask
        self.encode_pipeline = None
        if encoder is not None:
            if encoder.d_hv != model.d_hv:
                raise ValueError(
                    f"encoder produces {encoder.d_hv}-dim hypervectors but "
                    f"the model is {model.d_hv}-dim"
                )
            self.encode_pipeline = EncodePipeline(
                encoder,
                chunk_size=batch_size if chunk_size is None else chunk_size,
                workers=encode_workers,
                executor=encode_executor,
            )

        class_hvs = model.class_hvs
        if self.quantizer is not None and not self.store_is_quantized:
            class_hvs = self.quantizer(class_hvs)
        if not self.backend.supports(class_hvs):
            raise ValueError(
                f"the {self.backend.name!r} backend cannot represent this "
                "class store; pass quantizer='bipolar' (or 'ternary' / "
                "'ternary-biased') to quantize it for serving"
            )
        self.prepared = self.backend.prepare_class_store(class_hvs)
        self.queries_served = 0
        self.batches_served = 0

    # ------------------------------------------------------------------
    @property
    def class_norms(self) -> np.ndarray:
        """Precomputed Eq. (4) denominators of the served store."""
        return self.prepared.norms

    @property
    def store_nbytes(self) -> int:
        """Bytes held by the prepared class store."""
        store = self.prepared.store
        if isinstance(store, PackedHV):
            return store.nbytes
        return int(store.nbytes)

    def _batches(self, queries):
        if not isinstance(queries, PackedHV):
            queries = np.atleast_2d(np.asarray(queries))
        n = queries.n if isinstance(queries, PackedHV) else queries.shape[0]
        if n == 0:
            raise ValueError("cannot serve an empty query batch")
        for start in range(0, n, self.batch_size):
            yield queries[start : start + self.batch_size]

    # ------------------------------------------------------------------
    def scores(self, queries) -> np.ndarray:
        """Eq. (4) class scores, shape ``(n, n_classes)``, batched.

        ``queries`` may be a dense ``(n, d_hv)`` array or an already
        bit-packed :class:`~repro.backend.PackedHV` batch (what an
        obfuscating client ships for offload).
        """
        chunks = []
        for chunk in self._batches(queries):
            native = self.backend.prepare_queries(chunk)
            chunks.append(self.backend.class_scores(native, self.prepared))
            self.batches_served += 1
            self.queries_served += chunks[-1].shape[0]
        return np.vstack(chunks)

    def predict(self, queries) -> np.ndarray:
        """Predicted labels, shape ``(n,)``."""
        return np.argmax(self.scores(queries), axis=1)

    # ------------------------------------------------------------------
    # raw-feature serving (requires the ``encoder`` constructor argument)
    # ------------------------------------------------------------------
    @property
    def query_quantizer(self):
        """The quantizer raw-feature queries actually stream through.

        The configured ``quantizer`` wrapped over the live dimensions
        when the engine serves a pruned model (``keep_mask``), the
        configured quantizer itself otherwise, ``None`` when neither is
        set.
        """
        if self.keep_mask is None:
            return self.quantizer
        return MaskedQuantizer(
            get_quantizer(self.quantizer), self.keep_mask
        )

    def _feature_stream(self, X: np.ndarray):
        if self.encode_pipeline is None:
            raise ValueError(
                "this engine has no encoder; construct it with "
                "InferenceEngine(model, encoder=...) to serve raw features"
            )
        # Queries get the model's serving quantizer (masked to the live
        # dimensions for pruned models) so both backends answer
        # identically; the packed backend additionally receives
        # bit-packed tiles (what an obfuscating client ships).
        q = self.query_quantizer
        packed_backend = isinstance(self.backend, PackedBackend)
        pack = (
            packed_backend
            and self.quantizer is not None
            and self.quantizer.packable
        )
        if packed_backend and not pack:
            raise ValueError(
                f"the {self.backend.name!r} backend needs a packable "
                "quantizer (bipolar/ternary/ternary-biased) to serve "
                "raw features"
            )
        return self.encode_pipeline.stream_quantized(X, q, pack=pack)

    def scores_features(self, X: np.ndarray) -> np.ndarray:
        """Eq. (4) scores for raw ``(n, d_in)`` features, streamed.

        Fuses encode → quantize (→ pack) → score tile by tile: at no
        point does more than one encoded tile exist in memory.
        """
        return np.vstack(
            [self.scores(H) for _, H in self._feature_stream(X)]
        )

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for raw ``(n, d_in)`` features, streamed."""
        return np.concatenate(
            [self.predict(H) for _, H in self._feature_stream(X)]
        )

    def accuracy_features(self, X: np.ndarray, labels: np.ndarray) -> float:
        """Streamed accuracy on raw features."""
        y = check_labels(labels, "labels", n_classes=self.n_classes)
        preds = self.predict_features(X)
        if preds.shape[0] != y.shape[0]:
            raise ValueError(f"{preds.shape[0]} queries but {y.shape[0]} labels")
        return float(np.mean(preds == y))

    def accuracy(self, queries, labels: np.ndarray) -> float:
        """Fraction of queries whose argmax class matches ``labels``."""
        y = check_labels(labels, "labels", n_classes=self.n_classes)
        preds = self.predict(queries)
        if preds.shape[0] != y.shape[0]:
            raise ValueError(f"{preds.shape[0]} queries but {y.shape[0]} labels")
        return float(np.mean(preds == y))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        q = self.quantizer.name if self.quantizer is not None else None
        return (
            f"InferenceEngine(backend={self.backend.name!r}, quantizer={q!r}, "
            f"n_classes={self.n_classes}, d_hv={self.d_hv}, "
            f"served={self.queries_served})"
        )

"""Model serving: artifacts, registry, micro-batching, prepared engines.

The serving subsystem moves models from training to traffic:

* :class:`ModelArtifact` — the versioned on-disk unit (npz tensors +
  JSON manifest) that reconstructs a ready engine without training code;
* :class:`InferenceEngine` — a prepared snapshot (quantized once,
  bit-packed once, norms precomputed once) answering batched queries
  through any :mod:`repro.backend` backend;
* :class:`ModelRegistry` — named, versioned engines with atomic
  hot-swap (promote a fresh privatized model, zero dropped requests);
* :class:`MicroBatchScheduler` / :class:`ModelServer` — deadline- and
  size-triggered coalescing of concurrent small callers into bounded
  packed batches;
* :class:`ServingAPI` — the one typed surface (speaking
  :mod:`repro.proto` requests/responses) every entry point funnels
  through;
* :class:`ServingFrontend` / :class:`FrontendHandle` — the asyncio
  socket server (plus HTTP ops adapter) that exposes the API to remote
  :class:`~repro.client.PriveHDClient` connections without ever seeing
  raw features or codebooks;
* :class:`WorkerPool` — K acceptor processes sharing one listen address
  via ``SO_REUSEPORT``, each mmap-loading the same artifact read-only,
  hot-swapped fleet-wide over a control channel and kept at strength by
  a supervisor that respawns crashed workers with the registry state
  replayed;
* :class:`ModelFleet` / :class:`FleetAPI` — million-model
  multi-tenancy: a tenant-keyed facade over many registries with a
  byte-budgeted LRU artifact cache (:class:`FleetStats` counters) and
  cross-tenant coalesced scoring, addressed by the protocol-v4
  ``tenant`` key;
* :class:`Overloaded` / :class:`DeadlineExceeded` / :class:`WorkerLost`
  / :class:`TenantNotFound` — the typed overload/failure vocabulary
  (see ``docs/operations.md``);
* :data:`faults` — the deterministic fault-injection registry the chaos
  suite and ``bench_serve --chaos`` arm (a no-op in production).
"""

from repro.serve.api import ServingAPI
from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ModelArtifact,
    load_artifact,
)
from repro.serve.bench import ThroughputResult, make_serving_fixture, run_throughput
from repro.serve.engine import InferenceEngine
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    TenantNotFound,
    WorkerLost,
)
from repro.serve.faults import FaultRegistry, faults
from repro.serve.fleet import (
    DEFAULT_TENANT,
    FleetAPI,
    FleetStats,
    ModelFleet,
    fused_tenant_scores,
)
from repro.serve.frontend import FrontendConfig, FrontendHandle, ServingFrontend
from repro.serve.loops import (
    LOOP_CHOICES,
    UVLOOP_AVAILABLE,
    loops_available,
    new_event_loop,
)
from repro.serve.pool import WorkerPool
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.scheduler import (
    MicroBatchConfig,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.serve.server import ModelServer

__all__ = [
    "InferenceEngine",
    "ModelArtifact",
    "ArtifactError",
    "load_artifact",
    "ARTIFACT_FORMAT_VERSION",
    "ModelRegistry",
    "ModelVersion",
    "MicroBatchConfig",
    "MicroBatchScheduler",
    "SchedulerStats",
    "ModelServer",
    "ServingAPI",
    "ServingFrontend",
    "FrontendConfig",
    "FrontendHandle",
    "WorkerPool",
    "ModelFleet",
    "FleetAPI",
    "FleetStats",
    "DEFAULT_TENANT",
    "fused_tenant_scores",
    "Overloaded",
    "DeadlineExceeded",
    "WorkerLost",
    "TenantNotFound",
    "FaultRegistry",
    "faults",
    "LOOP_CHOICES",
    "UVLOOP_AVAILABLE",
    "loops_available",
    "new_event_loop",
    "ThroughputResult",
    "make_serving_fixture",
    "run_throughput",
]

"""Model serving: prepared, batched inference over pluggable backends.

:class:`InferenceEngine` owns a ready-to-serve snapshot of a trained
model — quantized once, bit-packed once, norms precomputed once — and
answers query batches through any :mod:`repro.backend` backend.
"""

from repro.serve.bench import ThroughputResult, make_serving_fixture, run_throughput
from repro.serve.engine import InferenceEngine

__all__ = [
    "InferenceEngine",
    "ThroughputResult",
    "make_serving_fixture",
    "run_throughput",
]

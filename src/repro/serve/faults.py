"""Deterministic fault injection for the serving stack.

Chaos testing a server with ``kill -9`` and ``sleep`` produces flaky
tests; this module produces *deterministic* failures instead.  The
serving layers call :meth:`FaultRegistry.fire` at a handful of named
**fault points**; unless a rule is armed for that point the call is a
single dict lookup and returns ``None`` — production cost is nil.  The
chaos suite and ``bench_serve --chaos`` arm rules that fire on exact
hit counts, so "the worker crashes while handling the third control
command" is a reproducible scenario, not a race.

Fault points currently instrumented
-----------------------------------
========================  ====================================================
``scheduler.flush``       just before a micro-batch flush invokes the runner
                          (``stall`` simulates a wedged kernel)
``frontend.read``         after each decoded request frame, before dispatch
                          (``delay`` simulates a slow network/loop)
``frontend.reply``        before a response frame is written
                          (``drop`` silently eats the reply — the client
                          retry path's worst case; ``delay`` defers it)
``worker.control``        at the top of a pool worker's control-command
                          handler (``crash`` exits the process like a
                          segfault; ``stall`` wedges the ack — the
                          supervisor/ack-timeout scenario)
========================  ====================================================

Rules
-----
A rule is ``"point:action[,key=value ...]"``:

* actions — ``crash`` (``os._exit(70)``), ``error`` (raise
  :class:`InjectedFault`), ``drop``, ``delay``, ``stall`` (the last
  three are returned to the call site, which knows whether to skip a
  write or how to sleep without blocking an event loop);
* ``after=N`` — skip the first N hits (default 0);
* ``times=N`` — fire at most N times, then fall dormant (default:
  forever);
* ``delay_ms=N`` — sleep length for ``delay``/``stall`` (default 100).

    >>> faults.arm("frontend.reply:drop,after=2,times=1")
    >>> # third reply written after arming is silently dropped, once

Workers are separate processes: arm them through
:meth:`~repro.serve.WorkerPool.inject` (a control-channel broadcast) or
the ``PRIVE_HD_FAULTS`` environment variable (``;``-separated rules),
which every pool worker reads at startup via :meth:`arm_from_env`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

__all__ = ["FaultRegistry", "FaultAction", "InjectedFault", "faults"]

#: environment variable pool workers read at startup (``;``-separated
#: rule specs)
FAULTS_ENV_VAR = "PRIVE_HD_FAULTS"

_ACTIONS = ("crash", "error", "drop", "delay", "stall")


class InjectedFault(RuntimeError):
    """The exception an armed ``error`` rule raises at its fault point."""


@dataclass(frozen=True)
class FaultAction:
    """What :meth:`FaultRegistry.fire` tells an instrumented call site.

    Attributes
    ----------
    action:
        ``"drop"``, ``"delay"``, or ``"stall"`` — the actions a call
        site interprets itself (``crash``/``error`` never reach the
        caller: they exit or raise inside :meth:`~FaultRegistry.fire`).
    delay_s:
        Sleep length for ``delay``/``stall`` actions.
    """

    action: str
    delay_s: float = 0.0


@dataclass
class _Rule:
    point: str
    action: str
    after: int = 0
    times: int | None = None
    delay_s: float = 0.1
    hits: int = 0
    fires: int = 0

    def spec(self) -> str:
        parts = [f"{self.point}:{self.action}", f"after={self.after}"]
        if self.times is not None:
            parts.append(f"times={self.times}")
        parts.append(f"delay_ms={int(self.delay_s * 1e3)}")
        return ",".join(parts)


@dataclass
class FaultRegistry:
    """Armable fault rules keyed by fault point (see module docs).

    The process-wide instance is :data:`repro.serve.faults`; tests may
    construct private registries, but the instrumented call sites all
    fire the shared one.  Thread-safe; unarmed cost is one empty-dict
    truthiness check per fault point.
    """

    _rules: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, spec: str) -> None:
        """Arm one rule from its ``"point:action[,k=v ...]"`` spec."""
        head, _, tail = spec.strip().partition(",")
        point, sep, action = head.partition(":")
        point, action = point.strip(), action.strip()
        if not sep or not point or action not in _ACTIONS:
            raise ValueError(
                f"fault spec must look like 'point:action[,k=v ...]' with "
                f"action in {_ACTIONS}, got {spec!r}"
            )
        rule = _Rule(point=point, action=action)
        for item in filter(None, (p.strip() for p in tail.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed fault option {item!r}")
            key = key.strip()
            if key == "after":
                rule.after = int(value)
            elif key == "times":
                rule.times = int(value)
            elif key == "delay_ms":
                rule.delay_s = int(value) / 1e3
            else:
                raise ValueError(f"unknown fault option {key!r}")
        with self._lock:
            self._rules[point] = rule

    def arm_from_env(self) -> int:
        """Arm every ``;``-separated rule in ``PRIVE_HD_FAULTS``.

        Pool workers call this at startup so a chaos harness can arm
        faults in processes it spawns but never imports.  Returns the
        number of rules armed (0 when the variable is unset/empty).
        """
        raw = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not raw:
            return 0
        count = 0
        for spec in filter(None, (s.strip() for s in raw.split(";"))):
            self.arm(spec)
            count += 1
        return count

    def disarm(self, point: str | None = None) -> None:
        """Remove one rule (or every rule with ``point=None``)."""
        with self._lock:
            if point is None:
                self._rules.clear()
            else:
                self._rules.pop(point, None)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, point: str) -> FaultAction | None:
        """Hit a fault point; the armed action, if one triggers.

        ``crash`` calls ``os._exit(70)`` (no cleanup — exactly like the
        real failure it simulates) and ``error`` raises
        :class:`InjectedFault`, both from inside this call; ``drop``,
        ``delay``, and ``stall`` are returned as a
        :class:`FaultAction` for the call site to interpret.  Returns
        ``None`` when nothing is armed for ``point`` or the rule's
        ``after``/``times`` window does not cover this hit.
        """
        if not self._rules:  # unarmed fast path — no lock
            return None
        with self._lock:
            rule = self._rules.get(point)
            if rule is None:
                return None
            rule.hits += 1
            if rule.hits <= rule.after:
                return None
            if rule.times is not None and rule.fires >= rule.times:
                return None
            rule.fires += 1
            action, delay_s = rule.action, rule.delay_s
        if action == "crash":
            os._exit(70)
        if action == "error":
            raise InjectedFault(f"injected fault at {point!r}")
        return FaultAction(action=action, delay_s=delay_s)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-point ``{spec, hits, fires}`` for chaos reports."""
        with self._lock:
            return {
                point: {
                    "spec": rule.spec(),
                    "hits": rule.hits,
                    "fires": rule.fires,
                }
                for point, rule in self._rules.items()
            }

    @property
    def armed(self) -> bool:
        """Whether any rule is currently armed."""
        return bool(self._rules)


#: the process-wide registry every instrumented serving layer fires
faults = FaultRegistry()

"""The serving frontend: registry-backed, micro-batched, hot-swappable.

:class:`ModelServer` is what a deployment actually exposes to callers:
it owns a :class:`~repro.serve.ModelRegistry` of named/versioned models
and one :class:`~repro.serve.MicroBatchScheduler` per served entry
point, so that

* many concurrent small callers are coalesced into bounded packed
  batches (throughput ≈ the offline batch bench, not per-query
  matmuls);
* every batch is answered by one consistent model version — the
  scheduler's runner resolves the registry *per flush*, so
  :meth:`~repro.serve.ModelRegistry.promote` hot-swaps versions between
  batches with zero dropped requests;
* encoded-hypervector clients (``predict``) and raw-feature clients
  (``predict_features``, for artifacts that recorded an encoder) get
  separate schedulers — their row shapes differ.

    >>> registry = ModelRegistry()
    >>> registry.load("isolet", "artifacts/isolet-v1")
    >>> with ModelServer(registry, default_model="isolet") as server:
    ...     preds = server.predict(query_hv)          # any thread
    ...     registry.load("isolet", "artifacts/isolet-v2")  # hot swap
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backend.packed import PackedHV, n_words
from repro.serve.artifact import ModelArtifact
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicroBatchConfig, MicroBatchScheduler

__all__ = ["ModelServer"]

#: scheduler entry points a caller may submit to.  The ``*_packed``
#: methods take uint64 plane rows (``[signs | mags]``, the wire layout)
#: and rebuild the PackedHV per flush — bit-plane queries stay packed
#: through the whole micro-batching path, 16x smaller than dense rows.
SERVING_METHODS = (
    "predict",
    "scores",
    "predict_features",
    "predict_packed",
    "scores_packed",
)


class ModelServer:
    """Micro-batched serving over a (hot-swappable) model registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.ModelRegistry` to serve from; publishing
        or promoting versions on it takes effect on the next flush.
        ``None`` creates an empty registry (reachable as ``.registry``).
    default_model:
        Model name assumed when a call omits ``model=``; optional if the
        registry serves exactly one name at call time.
    config:
        Micro-batching flush policy shared by all entry points.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        default_model: str | None = None,
        config: MicroBatchConfig | None = None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.default_model = default_model
        self.config = config or MicroBatchConfig()
        self._schedulers: dict[tuple[str, str], MicroBatchScheduler] = {}
        # Version that answered the most recent flush, per entry point.
        # Written by the runner (flusher thread) just before it scores;
        # read by future callbacks, which the scheduler fires in the
        # same flusher thread before the next flush starts — so a
        # reader always sees the version of its own batch.
        self._flush_versions: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # convenience publishing
    # ------------------------------------------------------------------
    def serve(self, name: str, model, **publish_kwargs) -> int:
        """Publish an artifact/engine and make it this server's default.

        Sugar for ``registry.publish`` + ``default_model=name`` on a
        fresh server; returns the published version.
        """
        version = self.registry.publish(name, model, **publish_kwargs)
        if self.default_model is None:
            self.default_model = name
        return version

    # ------------------------------------------------------------------
    # serving entry points (thread-safe, blocking, micro-batched)
    # ------------------------------------------------------------------
    def predict(self, queries, *, model: str | None = None) -> np.ndarray:
        """Predicted labels for encoded query hypervectors.

        Accepts a single ``(d_hv,)`` query or an ``(n, d_hv)`` dense
        batch; concurrent callers are coalesced into one engine call
        per flush (the batch is packed once there, when the serving
        backend is packed).
        """
        return self._scheduler(model, "predict").predict(queries)

    def scores(self, queries, *, model: str | None = None) -> np.ndarray:
        """Eq. (4) class scores, micro-batched like :meth:`predict`."""
        return self._scheduler(model, "scores").predict(queries)

    def predict_features(self, X, *, model: str | None = None) -> np.ndarray:
        """Predictions for raw ``(n, d_in)`` features.

        Requires the served artifact to carry an encoder config; the
        whole coalesced batch streams through the engine's fused
        encode → quantize (→ pack) pipeline once per flush.
        """
        return self._scheduler(model, "predict_features").predict(X)

    def submit(
        self,
        queries,
        *,
        model: str | None = None,
        method: str = "predict",
        deadline: float | None = None,
    ):
        """Non-blocking submission; returns the request's Future.

        ``method`` picks the entry point the coalesced batch runs
        through: ``"predict"`` (default), ``"scores"``,
        ``"predict_features"``, or the plane-row ``"predict_packed"`` /
        ``"scores_packed"``.  Each method has its own scheduler, so row
        shapes never mix inside a batch.  ``deadline`` (absolute
        :func:`time.monotonic`) and the scheduler's admission bounds
        behave exactly as in
        :meth:`~repro.serve.MicroBatchScheduler.submit` — a saturated
        scheduler raises :class:`~repro.serve.Overloaded` instead of
        queueing without bound.
        """
        if method not in SERVING_METHODS:
            raise ValueError(
                f"unknown serving method {method!r}; choose from "
                f"{SERVING_METHODS}"
            )
        return self._scheduler(model, method).submit(
            queries, deadline=deadline
        )

    def submit_packed(self, queries: PackedHV, *, model: str | None = None,
                      want_scores: bool = False,
                      deadline: float | None = None):
        """Non-blocking scoring of a bit-packed query batch.

        The two uint64 planes travel the scheduler as one
        ``(n, 2 * n_words)`` row block — no unpack on the submission
        path; the flush runner rebuilds the :class:`PackedHV` and the
        packed backend consumes it natively.  (A dense-backend engine
        unpacks inside the flush instead — off the caller's thread
        either way.)  ``deadline`` propagates to the scheduler as in
        :meth:`submit`.
        """
        rows = np.concatenate([queries.signs, queries.mags], axis=1)
        method = "scores_packed" if want_scores else "predict_packed"
        return self._scheduler(model, method).submit(rows, deadline=deadline)

    def flushed_version(
        self, model: str | None = None, method: str = "predict"
    ) -> int:
        """The registry version that answered the latest flush.

        Meaningful from a future callback of that flush (the scheduler
        runs callbacks in the flusher thread before the next flush), so
        a response can be labeled with the exact version that scored it
        even when a hot-swap landed between submit and flush.  Falls
        back to the current version before any flush has run.
        """
        name = self.resolve_name(model)
        version = self._flush_versions.get((name, method))
        if version is None:
            return self.registry.current_version(name)
        return version

    # ------------------------------------------------------------------
    def current_artifact(self, model: str | None = None) -> ModelArtifact | None:
        """The artifact behind the current version (None if engine-only)."""
        return self.registry.describe(self.resolve_name(model)).artifact

    def stats(self) -> dict:
        """Per-entry-point scheduler stats, keyed ``"name.method"``."""
        with self._lock:
            return {
                f"{name}.{method}": sched.stats
                for (name, method), sched in self._schedulers.items()
            }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def resolve_name(self, model: str | None) -> str:
        """The registry name a call with ``model=`` would serve.

        ``None`` falls back to ``default_model``, then to the single
        published name when the registry serves exactly one.
        """
        name = model or self.default_model
        if name is None:
            names = self.registry.names()
            if len(names) == 1:
                return names[0]
            raise ValueError(
                "no model name given and no default set; "
                f"registry serves {list(names)}"
            )
        return name

    def _scheduler(self, model: str | None, method: str) -> MicroBatchScheduler:
        name = self.resolve_name(model)
        key = (name, method)
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            sched = self._schedulers.get(key)
            if sched is None:
                # The runner resolves the *current* engine at every
                # flush — this is what makes registry promotion a
                # zero-downtime hot swap: a batch in flight keeps its
                # engine, the next batch gets the new one.
                def runner(rows, _name=name, _method=method):
                    record = self.registry.describe(_name)
                    self._flush_versions[(_name, _method)] = record.version
                    engine = record.engine
                    if _method in ("predict_packed", "scores_packed"):
                        return self._run_packed(engine, rows, _method)
                    return getattr(engine, _method)(rows)

                sched = MicroBatchScheduler(
                    runner, self.config, name=f"{name}.{method}"
                )
                self._schedulers[key] = sched
            return sched

    @staticmethod
    def _run_packed(engine, rows: np.ndarray, method: str) -> np.ndarray:
        """Flush runner for plane-row batches: rebuild, score.

        ``rows`` is the concatenated ``[signs | mags]`` layout from
        :meth:`submit_packed`.  The packed backend consumes the rebuilt
        :class:`PackedHV` natively; a dense engine gets the exact
        unpacked values — either way the conversion happens once per
        flush, on the flusher thread.
        """
        words = n_words(engine.d_hv)
        if rows.shape[1] != 2 * words:
            raise ValueError(
                f"plane rows have {rows.shape[1]} words but a "
                f"d_hv={engine.d_hv} model needs {2 * words}"
            )
        packed = PackedHV(
            signs=np.ascontiguousarray(rows[:, :words]),
            mags=np.ascontiguousarray(rows[:, words:]),
            d=engine.d_hv,
        )
        queries = (
            packed
            if engine.backend.name == "packed"
            else packed.unpack(np.float32)
        )
        if method == "predict_packed":
            return engine.predict(queries)
        return engine.scores(queries)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop every scheduler; further calls raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            schedulers = list(self._schedulers.values())
        for sched in schedulers:
            sched.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelServer(models={list(self.registry.names())}, "
            f"default={self.default_model!r}, "
            f"max_batch={self.config.max_batch})"
        )

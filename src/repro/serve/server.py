"""The serving frontend: registry-backed, micro-batched, hot-swappable.

:class:`ModelServer` is what a deployment actually exposes to callers:
it owns a :class:`~repro.serve.ModelRegistry` of named/versioned models
and one :class:`~repro.serve.MicroBatchScheduler` per served entry
point, so that

* many concurrent small callers are coalesced into bounded packed
  batches (throughput ≈ the offline batch bench, not per-query
  matmuls);
* every batch is answered by one consistent model version — the
  scheduler's runner resolves the registry *per flush*, so
  :meth:`~repro.serve.ModelRegistry.promote` hot-swaps versions between
  batches with zero dropped requests;
* encoded-hypervector clients (``predict``) and raw-feature clients
  (``predict_features``, for artifacts that recorded an encoder) get
  separate schedulers — their row shapes differ.

    >>> registry = ModelRegistry()
    >>> registry.load("isolet", "artifacts/isolet-v1")
    >>> with ModelServer(registry, default_model="isolet") as server:
    ...     preds = server.predict(query_hv)          # any thread
    ...     registry.load("isolet", "artifacts/isolet-v2")  # hot swap
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve.artifact import ModelArtifact
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicroBatchConfig, MicroBatchScheduler

__all__ = ["ModelServer"]


class ModelServer:
    """Micro-batched serving over a (hot-swappable) model registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.ModelRegistry` to serve from; publishing
        or promoting versions on it takes effect on the next flush.
        ``None`` creates an empty registry (reachable as ``.registry``).
    default_model:
        Model name assumed when a call omits ``model=``; optional if the
        registry serves exactly one name at call time.
    config:
        Micro-batching flush policy shared by all entry points.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        default_model: str | None = None,
        config: MicroBatchConfig | None = None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.default_model = default_model
        self.config = config or MicroBatchConfig()
        self._schedulers: dict[tuple[str, str], MicroBatchScheduler] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # convenience publishing
    # ------------------------------------------------------------------
    def serve(self, name: str, model, **publish_kwargs) -> int:
        """Publish an artifact/engine and make it this server's default.

        Sugar for ``registry.publish`` + ``default_model=name`` on a
        fresh server; returns the published version.
        """
        version = self.registry.publish(name, model, **publish_kwargs)
        if self.default_model is None:
            self.default_model = name
        return version

    # ------------------------------------------------------------------
    # serving entry points (thread-safe, blocking, micro-batched)
    # ------------------------------------------------------------------
    def predict(self, queries, *, model: str | None = None) -> np.ndarray:
        """Predicted labels for encoded query hypervectors.

        Accepts a single ``(d_hv,)`` query or an ``(n, d_hv)`` dense
        batch; concurrent callers are coalesced into one engine call
        per flush (the batch is packed once there, when the serving
        backend is packed).
        """
        return self._scheduler(model, "predict").predict(queries)

    def scores(self, queries, *, model: str | None = None) -> np.ndarray:
        """Eq. (4) class scores, micro-batched like :meth:`predict`."""
        return self._scheduler(model, "scores").predict(queries)

    def predict_features(self, X, *, model: str | None = None) -> np.ndarray:
        """Predictions for raw ``(n, d_in)`` features.

        Requires the served artifact to carry an encoder config; the
        whole coalesced batch streams through the engine's fused
        encode → quantize (→ pack) pipeline once per flush.
        """
        return self._scheduler(model, "predict_features").predict(X)

    def submit(self, queries, *, model: str | None = None):
        """Non-blocking :meth:`predict`; returns the request's Future."""
        return self._scheduler(model, "predict").submit(queries)

    # ------------------------------------------------------------------
    def current_artifact(self, model: str | None = None) -> ModelArtifact | None:
        """The artifact behind the current version (None if engine-only)."""
        return self.registry.describe(self._resolve_name(model)).artifact

    def stats(self) -> dict:
        """Per-entry-point scheduler stats, keyed ``"name.method"``."""
        with self._lock:
            return {
                f"{name}.{method}": sched.stats
                for (name, method), sched in self._schedulers.items()
            }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _resolve_name(self, model: str | None) -> str:
        name = model or self.default_model
        if name is None:
            names = self.registry.names()
            if len(names) == 1:
                return names[0]
            raise ValueError(
                "no model name given and no default set; "
                f"registry serves {list(names)}"
            )
        return name

    def _scheduler(self, model: str | None, method: str) -> MicroBatchScheduler:
        name = self._resolve_name(model)
        key = (name, method)
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            sched = self._schedulers.get(key)
            if sched is None:
                # The runner resolves the *current* engine at every
                # flush — this is what makes registry promotion a
                # zero-downtime hot swap: a batch in flight keeps its
                # engine, the next batch gets the new one.
                def runner(rows, _name=name, _method=method):
                    engine = self.registry.resolve(_name)
                    return getattr(engine, _method)(rows)

                sched = MicroBatchScheduler(
                    runner, self.config, name=f"{name}.{method}"
                )
                self._schedulers[key] = sched
            return sched

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop every scheduler; further calls raise."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            schedulers = list(self._schedulers.values())
        for sched in schedulers:
            sched.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelServer(models={list(self.registry.names())}, "
            f"default={self.default_model!r}, "
            f"max_batch={self.config.max_batch})"
        )

"""The serving registry: named, versioned models with atomic hot-swap.

A Prive-HD deployment retrains and re-privatizes on a cadence — each run
produces a fresh :class:`~repro.serve.ModelArtifact` that must replace
the live model *without dropping requests*.  :class:`ModelRegistry`
holds every published version of every named model as a prepared
:class:`~repro.serve.InferenceEngine` and keeps one pointer per name to
the *current* version.

Swap semantics
--------------
``promote`` replaces the current pointer under a lock in one assignment;
``resolve`` takes the same lock for a dict read.  A request that
resolved the old engine before a promote simply finishes on the old
engine — both versions are fully constructed, so there is no window
where a name resolves to a partially-prepared model, and therefore no
dropped or errored request during a swap.  The micro-batching
:class:`~repro.serve.ModelServer` resolves once per *flush*, so every
query in a batch is answered by a single consistent version.

    >>> reg = ModelRegistry()
    >>> v1 = reg.publish("isolet", artifact_v1)        # becomes current
    >>> v2 = reg.publish("isolet", artifact_v2, promote=False)
    >>> reg.promote("isolet", v2)                      # atomic swap
    >>> reg.resolve("isolet")                          # v2's engine
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.serve.artifact import ModelArtifact
from repro.serve.engine import InferenceEngine

__all__ = ["ModelRegistry", "ModelVersion"]


@dataclass(frozen=True)
class ModelVersion:
    """One published version of a named model.

    Attributes
    ----------
    name, version:
        Registry coordinates; versions are assigned sequentially per
        name starting at 1.
    engine:
        The prepared serving engine (quantized/packed once, at publish);
        ``None`` while the version is evicted (retired to disk).
    artifact:
        The source artifact when the version was published from one
        (``None`` for engines published directly, and while evicted).
    source_path:
        The on-disk artifact directory this version can be reloaded
        from; set by :meth:`ModelRegistry.load`.  Versions with a
        ``source_path`` are *evictable*: retiring them drops the
        prepared store from memory but keeps the record, and a later
        rollback lazily reloads it.
    engine_kwargs:
        Engine overrides recorded at publish, replayed on reload so an
        evicted version comes back configured exactly as published.
    """

    name: str
    version: int
    engine: InferenceEngine | None
    artifact: ModelArtifact | None = field(default=None, repr=False)
    source_path: Path | None = field(default=None, repr=False)
    engine_kwargs: dict | None = field(default=None, repr=False)

    @property
    def is_evicted(self) -> bool:
        """True while the prepared store lives only on disk."""
        return self.engine is None


class ModelRegistry:
    """Thread-safe store of named, versioned serving engines.

    All mutating and resolving operations take one internal lock; the
    critical sections are dict operations only (engine preparation
    happens *outside* the lock), so resolution stays cheap under
    concurrent serving traffic.
    """

    def __init__(self):
        # Re-entrant: resolution helpers (describe -> _require -> names)
        # compose under one lock without deadlocking.
        self._lock = threading.RLock()
        self._versions: dict[str, dict[int, ModelVersion]] = {}
        self._current: dict[str, int] = {}
        self.swaps = 0

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        model: ModelArtifact | InferenceEngine,
        *,
        promote: bool = True,
        engine_kwargs: dict | None = None,
        source_path: str | Path | None = None,
    ) -> int:
        """Register a new version of ``name``; returns its version number.

        ``model`` is a :class:`~repro.serve.ModelArtifact` (an engine is
        built from it, honoring its recorded backend; ``engine_kwargs``
        forwards overrides) or an already-prepared
        :class:`~repro.serve.InferenceEngine`.  With ``promote=True``
        (default) the new version becomes current atomically; with
        ``promote=False`` it is staged for a later :meth:`promote` —
        e.g. after a validation pass against the live version.

        ``source_path`` records the artifact directory the version can
        be reloaded from after eviction; :meth:`load` sets it
        automatically.
        """
        if isinstance(model, ModelArtifact):
            engine = model.engine(**(engine_kwargs or {}))
            artifact: ModelArtifact | None = model
        elif isinstance(model, InferenceEngine):
            if engine_kwargs:
                raise ValueError(
                    "engine_kwargs only applies when publishing an artifact"
                )
            if source_path is not None:
                raise ValueError(
                    "source_path only applies when publishing an artifact"
                )
            engine, artifact = model, None
        else:
            raise TypeError(
                "publish() takes a ModelArtifact or an InferenceEngine, "
                f"got {type(model).__name__}"
            )
        with self._lock:
            versions = self._versions.setdefault(name, {})
            version = max(versions, default=0) + 1
            versions[version] = ModelVersion(
                name=name,
                version=version,
                engine=engine,
                artifact=artifact,
                source_path=None if source_path is None else Path(source_path),
                engine_kwargs=dict(engine_kwargs) if engine_kwargs else None,
            )
            if promote or name not in self._current:
                self._current[name] = version
                self.swaps += 1
        return version

    def load(
        self,
        name: str,
        path: str | Path,
        *,
        promote: bool = True,
        engine_kwargs: dict | None = None,
        mmap: bool = False,
        verify: bool = True,
    ) -> int:
        """Load an artifact directory from disk and :meth:`publish` it.

        The path is recorded on the version, which makes it evictable:
        :meth:`retire` can drop its in-memory store and a later rollback
        reloads it from here.  ``mmap=True`` maps the tensors read-only
        instead of copying them onto the heap (see
        :meth:`ModelArtifact.load`) — what each
        :class:`~repro.serve.WorkerPool` worker does so K processes
        share one page-cache copy of the class store.  ``verify=False``
        skips the SHA-256 pass *on this load only* — sound when the
        pool parent already hashed the directory; eviction reloads
        always re-verify.
        """
        return self.publish(
            name,
            ModelArtifact.load(path, mmap=mmap, verify=verify),
            promote=promote,
            engine_kwargs=engine_kwargs,
            source_path=path,
        )

    # ------------------------------------------------------------------
    # promotion / retirement
    # ------------------------------------------------------------------
    def promote(self, name: str, version: int) -> None:
        """Atomically make ``version`` the current one for ``name``.

        In-flight requests holding the previous engine finish on it;
        every resolution after this call returns the promoted engine.
        """
        with self._lock:
            self._require(name, version)
            self._current[name] = int(version)
            self.swaps += 1

    def retire(self, name: str, version: int) -> None:
        """Free a non-current version's prepared in-memory store.

        Disk-backed versions (published via :meth:`load`) are *evicted*:
        the record stays listed, the engine and artifact are dropped —
        typically the dominant share of registry memory, a prepared
        d_hv=10,000 store per version — and the next resolution (e.g. a
        rollback :meth:`promote`) lazily reloads them from the recorded
        artifact directory, checksums re-verified.  Versions without a
        ``source_path`` cannot come back, so they are deleted outright.
        """
        with self._lock:
            self._require(name, version)
            if self._current.get(name) == version:
                raise ValueError(
                    f"cannot retire the current version {version} of "
                    f"{name!r}; promote another version first"
                )
            record = self._versions[name][version]
            if record.source_path is None:
                del self._versions[name][version]
            elif record.engine is not None:
                self._versions[name][version] = replace(
                    record, engine=None, artifact=None
                )

    def is_evicted(self, name: str, version: int) -> bool:
        """Whether a version's store currently lives only on disk."""
        with self._lock:
            self._require(name, version)
            return self._versions[name][version].is_evicted

    def _require(self, name: str, version: int) -> None:
        if name not in self._versions:
            raise KeyError(f"unknown model {name!r}; published: {self.names()}")
        if version not in self._versions[name]:
            raise KeyError(
                f"model {name!r} has no version {version}; "
                f"published: {sorted(self._versions[name])}"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, name: str, version: int | None = None) -> InferenceEngine:
        """The engine for ``name`` (current version unless pinned)."""
        return self.describe(name, version).engine

    def describe(self, name: str, version: int | None = None) -> ModelVersion:
        """Full :class:`ModelVersion` record (engine + source artifact).

        Resolving an evicted version reloads its artifact from the
        recorded directory (checksum-verified) and re-prepares the
        engine with the kwargs it was originally published with — the
        slow path a rollback pays once.  The disk load and engine
        preparation run *outside* the registry lock (two concurrent
        first-resolvers may both load; one install wins), so serving
        traffic for other models never stalls behind a reload.
        """
        with self._lock:
            if name not in self._versions:
                raise KeyError(
                    f"unknown model {name!r}; published: {self.names()}"
                )
            if version is None:
                version = self._current[name]
            self._require(name, version)
            record = self._versions[name][version]
            if record.engine is not None:
                return record
        # Evicted: reload off-lock, then install under a double-check.
        artifact = ModelArtifact.load(record.source_path)
        engine = artifact.engine(**(record.engine_kwargs or {}))
        with self._lock:
            self._require(name, version)
            current = self._versions[name][version]
            if current.engine is None:
                current = replace(
                    current, engine=engine, artifact=artifact
                )
                self._versions[name][version] = current
            return current

    def current_version(self, name: str) -> int:
        """The currently-promoted version number of ``name``."""
        with self._lock:
            if name not in self._current:
                raise KeyError(f"unknown model {name!r}")
            return self._current[name]

    def versions(self, name: str) -> tuple[int, ...]:
        """All published version numbers of ``name``, ascending."""
        with self._lock:
            if name not in self._versions:
                raise KeyError(f"unknown model {name!r}")
            return tuple(sorted(self._versions[name]))

    def names(self) -> tuple[str, ...]:
        """All published model names, sorted."""
        with self._lock:
            return tuple(sorted(self._versions))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            parts = [
                f"{name}@v{self._current[name]}"
                f"({len(self._versions[name])} versions)"
                for name in sorted(self._versions)
            ]
        return f"ModelRegistry({', '.join(parts)})"

"""Event-loop selection for the serving frontend (asyncio / uvloop).

uvloop is an optional accelerator exactly like numba is for the compute
kernels (see :mod:`repro.backend.native`): when the package is
importable, ``--loop uvloop`` runs the frontend's acceptors on libuv's
event loop — a meaningful win at high connection counts because the
per-frame loop overhead (task wakeups, transport writes) is what caps
socket throughput once the codec is zero-copy.  When it is not
installed, selection *falls back to asyncio* with one INFO log instead
of failing: every deployment artifact and CLI flag works on a
uvloop-free host, and CI exercises both sides of the guard.

    >>> loop = new_event_loop("uvloop")   # uvloop if present, else asyncio
    >>> loop = new_event_loop("asyncio")  # always stdlib asyncio
"""

from __future__ import annotations

import asyncio
import logging

__all__ = ["LOOP_CHOICES", "UVLOOP_AVAILABLE", "loops_available", "new_event_loop"]

logger = logging.getLogger(__name__)

try:  # pragma: no cover - exercised only where uvloop is installed
    import uvloop

    UVLOOP_AVAILABLE = True
except ImportError:
    uvloop = None
    UVLOOP_AVAILABLE = False

#: valid values of the ``--loop`` flag / ``loop=`` parameters
LOOP_CHOICES = ("asyncio", "uvloop")

_fallback_logged = False


def loops_available() -> tuple[str, ...]:
    """The loop implementations importable in this environment."""
    return LOOP_CHOICES if UVLOOP_AVAILABLE else ("asyncio",)


def new_event_loop(loop: str = "asyncio") -> asyncio.AbstractEventLoop:
    """A fresh event loop of the requested flavor.

    ``"uvloop"`` on a host without uvloop degrades to asyncio with a
    single INFO log (the numba-fallback pattern): the flag is a
    performance request, not a hard dependency.
    """
    global _fallback_logged
    if loop not in LOOP_CHOICES:
        raise ValueError(
            f"loop must be one of {LOOP_CHOICES}, got {loop!r}"
        )
    if loop == "uvloop":
        if UVLOOP_AVAILABLE:  # pragma: no cover - needs uvloop installed
            return uvloop.new_event_loop()
        if not _fallback_logged:
            logger.info(
                "uvloop requested but not installed; serving on stdlib "
                "asyncio (pip install uvloop to enable)"
            )
            _fallback_logged = True
    return asyncio.new_event_loop()

"""Async micro-batching: coalesce concurrent single queries into batches.

The packed similarity kernels are batch machines — a 10,000-dimension
XOR+popcount pass costs nearly the same for 1 query as for 64 — yet real
serving traffic arrives as many concurrent *small* requests.  Answering
each caller synchronously degrades the packed batch bench to per-query
matmuls; :class:`MicroBatchScheduler` restores the batch shape by
coalescing pending requests and flushing a bounded batch to the runner
when a trigger fires:

* **size** — pending rows reached ``max_batch``: flush immediately;
* **eager** (default policy) — the runner is idle and requests are
  pending: flush them now.  While the runner chews on a batch, new
  requests pile up behind it, so batch shape grows with load by pure
  backpressure — no artificial latency at low load, near-``max_batch``
  batches at saturation;
* **deadline** — with ``eager=False`` (paced mode), the *oldest*
  pending request has waited ``max_delay_s``: flush whatever is
  pending.  Paced mode trades tail latency for batch shape when the
  runner is cheap but per-flush overhead is not;
* **drain** — the scheduler is closing: flush the remainder.

Clients call :meth:`submit` (non-blocking, returns a
:class:`concurrent.futures.Future`) or :meth:`predict` (blocking sugar)
from any number of threads.  One background thread assembles batches,
stacks the rows, invokes the runner once, and slices the result back to
each caller's future — so ``N`` concurrent single-query clients cost
``ceil(N / max_batch)`` kernel invocations, not ``N``.

Overload safety
---------------
Without bounds, a saturated scheduler queues unboundedly: latency grows
without limit and memory with it.  Two admission limits close that
hole (both off by default — opt in per deployment):

* ``max_queue_rows`` — :meth:`submit` fails fast with a typed
  :class:`~repro.serve.Overloaded` (carrying a ``retry_after_ms``
  drain-rate hint) once that many rows are already pending;
* ``max_queue_age_s`` — likewise when the *oldest* pending request has
  waited that long, which catches a stalled runner even at low depth.

Requests may also carry a **deadline** (``submit(..., deadline=t)``,
absolute :func:`time.monotonic`): a request whose deadline expired
while queued is dropped *before* scoring — its future fails with
:class:`~repro.serve.DeadlineExceeded` and the batch never wastes
kernel time on an answer nobody is waiting for.  Rejections and drops
are counted in :class:`SchedulerStats` (``rejected``/``expired``).

The runner is any ``(n, d) → (n, …)`` callable — typically
``engine.predict`` or a registry resolution that picks the current
version per flush (see :class:`~repro.serve.ModelServer`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.serve.errors import DeadlineExceeded, Overloaded
from repro.serve.faults import faults
from repro.utils.validation import check_positive_int

__all__ = ["MicroBatchConfig", "MicroBatchScheduler", "SchedulerStats"]

#: fallback ``retry_after_ms`` hint before any flush has measured a
#: drain rate (and the floor/ceiling the measured hint is clamped to)
_RETRY_AFTER_DEFAULT_MS = 50
_RETRY_AFTER_MAX_MS = 10_000


@dataclass(frozen=True)
class MicroBatchConfig:
    """Flush policy of a :class:`MicroBatchScheduler`.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many rows are pending.  Batches never mix
        a partial request: a single request larger than ``max_batch``
        flushes alone (the engine chunks it internally via its own
        ``batch_size``), and smaller requests are packed whole up to
        the bound.
    eager:
        ``True`` (default): flush pending requests whenever the runner
        is idle; batch shape then comes from backpressure (requests
        that arrived while the previous batch ran).  ``False``: hold
        each batch until it fills or the deadline below expires.
    max_delay_s:
        Paced mode only (``eager=False``): longest any request may wait
        for batch-mates before a deadline flush — the knob trading tail
        latency for batch shape.
    max_queue_rows:
        Admission bound: :meth:`MicroBatchScheduler.submit` raises
        :class:`~repro.serve.Overloaded` once this many rows are
        already pending (``None`` = unbounded, the historical
        behavior).  A request larger than the bound is still admitted
        when the queue is empty, mirroring ``max_batch`` semantics.
    max_queue_age_s:
        Admission bound on *staleness*: reject new requests while the
        oldest pending one has waited longer than this (``None`` =
        unbounded).  Catches a stalled runner even when the queue is
        shallow.
    """

    max_batch: int = 256
    eager: bool = True
    max_delay_s: float = 0.002
    max_queue_rows: int | None = None
    max_queue_age_s: float | None = None

    def __post_init__(self):
        check_positive_int(self.max_batch, "max_batch")
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )
        if self.max_queue_rows is not None:
            check_positive_int(self.max_queue_rows, "max_queue_rows")
        if self.max_queue_age_s is not None and self.max_queue_age_s <= 0:
            raise ValueError(
                f"max_queue_age_s must be > 0, got {self.max_queue_age_s}"
            )


@dataclass
class SchedulerStats:
    """Cumulative flush accounting (read under the scheduler lock).

    ``flushes_by_trigger`` counts why each batch was released; a healthy
    loaded deployment flushes mostly on **size**, an idle one on
    **deadline**.  ``max_batch_rows``/``total_rows``/``flushes`` give the
    realized batch-shape distribution the bench reports.  ``rejected``
    counts rows refused by admission control (the caller got a typed
    :class:`~repro.serve.Overloaded`), ``expired`` rows dropped from
    the queue because their deadline passed before scoring.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    expired: int = 0
    flushes: int = 0
    total_rows: int = 0
    max_batch_rows: int = 0
    flushes_by_trigger: dict = field(
        default_factory=lambda: {
            "size": 0,
            "eager": 0,
            "deadline": 0,
            "drain": 0,
        }
    )

    @property
    def mean_batch_rows(self) -> float:
        """Average rows per runner invocation so far."""
        if self.flushes == 0:
            return 0.0
        return self.total_rows / self.flushes


class _Pending:
    """One submitted request: rows, future, arrival time, deadline."""

    __slots__ = ("rows", "squeeze", "future", "arrived_at", "deadline")

    def __init__(
        self,
        rows: np.ndarray,
        squeeze: bool,
        arrived_at: float,
        deadline: float | None = None,
    ):
        self.rows = rows
        self.squeeze = squeeze
        self.future: Future = Future()
        self.arrived_at = arrived_at
        self.deadline = deadline


class MicroBatchScheduler:
    """Deadline- and size-triggered micro-batcher around one runner.

    Use as a context manager (or call :meth:`start`/:meth:`close`):

        with MicroBatchScheduler(engine.predict) as sched:
            preds = sched.predict(one_query)      # coalesced under load

    Thread-safe; any number of client threads may submit concurrently.
    A runner exception fails exactly the futures of the batch that hit
    it — the scheduler itself keeps running.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        config: MicroBatchConfig | None = None,
        *,
        name: str = "micro-batch",
    ):
        self.runner = runner
        self.config = config or MicroBatchConfig()
        self.name = name
        self.stats = SchedulerStats()
        self._queue: deque[_Pending] = deque()
        self._queued_rows = 0
        # EWMA of runner seconds-per-row, feeding the retry_after_ms
        # hint of Overloaded rejections (written by the flusher thread
        # under the lock, read by submitters under the lock).
        self._ewma_s_per_row: float | None = None
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closing = False
        self._started = False
        self._worker = threading.Thread(
            target=self._loop, name=f"{name}-flusher", daemon=True
        )

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, queries, *, deadline: float | None = None) -> Future:
        """Enqueue a ``(d,)`` or ``(n, d)`` request; returns its Future.

        The future resolves to the runner's rows for exactly this
        request (first axis preserved; a 1-D submission resolves to the
        runner's single-row result, squeezed).

        ``deadline`` is an absolute :func:`time.monotonic` timestamp:
        if it passes while the request is still queued, the request is
        dropped before scoring and its future fails with
        :class:`~repro.serve.DeadlineExceeded` (an already-expired
        deadline raises it here, synchronously).  When the configured
        admission bounds are exceeded, raises
        :class:`~repro.serve.Overloaded` *without* enqueueing — the
        caller gets a ``retry_after_ms`` hint instead of an unbounded
        wait.
        """
        if not isinstance(queries, np.ndarray):
            queries = np.asarray(queries)
        squeeze = queries.ndim == 1
        rows = np.atleast_2d(queries)
        if rows.shape[0] == 0:
            raise ValueError("cannot schedule an empty query batch")
        now = time.monotonic()
        pending = _Pending(rows, squeeze, now, deadline)
        n_rows = rows.shape[0]
        with self._lock:
            if self._closing:
                raise RuntimeError(f"scheduler {self.name!r} is closed")
            if deadline is not None and deadline <= now:
                self.stats.expired += n_rows
                raise DeadlineExceeded(
                    f"deadline expired {(now - deadline) * 1e3:.1f} ms "
                    f"before submission to scheduler {self.name!r}"
                )
            self._check_admission(n_rows, now)
            if not self._started:
                self._started = True
                self._worker.start()
            self._queue.append(pending)
            self._queued_rows += n_rows
            self.stats.submitted += n_rows
            self._wake.notify()
        return pending.future

    def _check_admission(self, n_rows: int, now: float) -> None:
        """Enforce the queue bounds (lock held); raises ``Overloaded``.

        An oversized request is admitted into an *empty* queue (it
        flushes alone, like ``max_batch``); everything else is checked
        against both the row bound and the oldest-pending age bound.
        """
        cfg = self.config
        over: str | None = None
        if (
            cfg.max_queue_rows is not None
            and self._queue
            and self._queued_rows + n_rows > cfg.max_queue_rows
        ):
            over = (
                f"{self._queued_rows} rows queued + {n_rows} submitted "
                f"exceed max_queue_rows={cfg.max_queue_rows}"
            )
        elif (
            cfg.max_queue_age_s is not None
            and self._queue
            and now - self._queue[0].arrived_at > cfg.max_queue_age_s
        ):
            over = (
                f"oldest queued request is "
                f"{now - self._queue[0].arrived_at:.3f}s old "
                f"(max_queue_age_s={cfg.max_queue_age_s})"
            )
        if over is None:
            return
        self.stats.rejected += n_rows
        raise Overloaded(
            f"scheduler {self.name!r} is overloaded: {over}",
            retry_after_ms=self._retry_after_ms(),
            queued_rows=self._queued_rows,
        )

    def _retry_after_ms(self) -> int:
        """Estimated ms until the current queue drains (lock held)."""
        if self._ewma_s_per_row is None:
            return _RETRY_AFTER_DEFAULT_MS
        estimate = self._queued_rows * self._ewma_s_per_row * 1e3
        return int(min(max(estimate, 1.0), _RETRY_AFTER_MAX_MS))

    def predict(self, queries) -> np.ndarray:
        """Blocking submit: wait for this request's batch and return it."""
        return self.submit(queries).result()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatchScheduler":
        """Start the flusher thread eagerly (submit() starts it lazily)."""
        with self._lock:
            if self._closing:
                raise RuntimeError(f"scheduler {self.name!r} is closed")
            if not self._started:
                self._started = True
                self._worker.start()
        return self

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; flush (``drain=True``) the backlog."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            if not drain:
                while self._queue:
                    p = self._queue.popleft()
                    self._queued_rows -= p.rows.shape[0]
                    if p.future.set_running_or_notify_cancel():
                        p.future.set_exception(
                            RuntimeError(f"scheduler {self.name!r} closed")
                        )
                    else:
                        self.stats.cancelled += p.rows.shape[0]
            started = self._started
            self._wake.notify_all()
        if started:
            self._worker.join()

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # flusher thread
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        cfg = self.config
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._wake.wait()
                if not self._queue and self._closing:
                    return
                if not cfg.eager:
                    # Paced mode: wait for batch-mates until the batch
                    # fills or the oldest request's deadline expires.
                    deadline = self._queue[0].arrived_at + cfg.max_delay_s
                    while (
                        self._queued_rows < cfg.max_batch
                        and not self._closing
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wake.wait(timeout=remaining)
                batch, trigger = self._take_batch()
            if batch:
                self._run_batch(batch, trigger)

    def _take_batch(self) -> tuple[list[_Pending], str]:
        """Pop up to ``max_batch`` rows of whole requests (lock held).

        Requests whose deadline expired while queued are dropped here —
        their futures fail with
        :class:`~repro.serve.DeadlineExceeded` and their rows never
        reach the runner.
        """
        cfg = self.config
        now = time.monotonic()
        batch: list[_Pending] = []
        rows = 0
        while self._queue and (
            rows == 0 or rows + self._queue[0].rows.shape[0] <= cfg.max_batch
        ):
            p = self._queue.popleft()
            self._queued_rows -= p.rows.shape[0]
            # Transition the future to RUNNING; a client that cancelled
            # while queued is skipped here, and a RUNNING future can no
            # longer be cancelled, so the set_result/set_exception in
            # _run_batch cannot race a cancellation.
            if not p.future.set_running_or_notify_cancel():
                self.stats.cancelled += p.rows.shape[0]
                continue
            if p.deadline is not None and p.deadline <= now:
                self.stats.expired += p.rows.shape[0]
                p.future.set_exception(
                    DeadlineExceeded(
                        f"deadline expired after "
                        f"{(now - p.arrived_at) * 1e3:.1f} ms in the "
                        f"{self.name!r} queue"
                    )
                )
                continue
            batch.append(p)
            rows += p.rows.shape[0]
        if rows >= cfg.max_batch:
            trigger = "size"
        elif self._closing:
            trigger = "drain"
        elif cfg.eager:
            trigger = "eager"
        else:
            trigger = "deadline"
        return batch, trigger

    def _run_batch(self, batch: list[_Pending], trigger: str) -> None:
        stacked = (
            batch[0].rows
            if len(batch) == 1
            else np.concatenate([p.rows for p in batch], axis=0)
        )
        stall = faults.fire("scheduler.flush")
        if stall is not None and stall.delay_s > 0:
            time.sleep(stall.delay_s)
        flush_started = time.monotonic()
        try:
            result = np.asarray(self.runner(stacked))
        except BaseException as exc:  # noqa: BLE001 — forwarded per-future
            with self._lock:
                self.stats.failed += stacked.shape[0]
            for p in batch:
                p.future.set_exception(exc)
            return
        if result.shape[0] != stacked.shape[0]:
            exc = RuntimeError(
                f"runner returned {result.shape[0]} rows for a "
                f"{stacked.shape[0]}-row batch"
            )
            with self._lock:
                self.stats.failed += stacked.shape[0]
            for p in batch:
                p.future.set_exception(exc)
            return
        s_per_row = (time.monotonic() - flush_started) / stacked.shape[0]
        with self._lock:
            # Blend the observed drain rate into the retry_after hint
            # (alpha 0.3: responsive to load shifts, stable per flush).
            if self._ewma_s_per_row is None:
                self._ewma_s_per_row = s_per_row
            else:
                self._ewma_s_per_row += 0.3 * (
                    s_per_row - self._ewma_s_per_row
                )
            self.stats.flushes += 1
            self.stats.flushes_by_trigger[trigger] += 1
            self.stats.total_rows += stacked.shape[0]
            self.stats.max_batch_rows = max(
                self.stats.max_batch_rows, stacked.shape[0]
            )
            self.stats.completed += stacked.shape[0]
        for p, out in zip(batch, self._split_results(batch, result)):
            p.future.set_result(out)

    @staticmethod
    def _split_results(batch: list[_Pending], result: np.ndarray) -> list:
        """Each request's rows of the flush result, scattered vectorized.

        The dominant serving shape — every pending request a single
        squeezed query — takes one C-level row iteration over the result
        instead of per-future Python index arithmetic; mixed-size
        batches split at `np.cumsum` boundaries in one pass.  This is
        the flush-overhead fix for small ``d_hv`` (the kernel no longer
        dominates there): measured before/after in
        ``benchmarks/bench_serve.py`` (``scatter`` section of
        ``BENCH_serve.json``).
        """
        if len(batch) == 1:
            p = batch[0]
            return [result[0] if p.squeeze else result]
        sizes = np.fromiter(
            (p.rows.shape[0] for p in batch), dtype=np.intp, count=len(batch)
        )
        if sizes.max() == 1:
            return [
                out if p.squeeze else out[None]
                for p, out in zip(batch, result)
            ]
        outs = np.split(result, np.cumsum(sizes[:-1]), axis=0)
        return [
            out[0] if p.squeeze else out for p, out in zip(batch, outs)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatchScheduler(name={self.name!r}, "
            f"max_batch={self.config.max_batch}, "
            f"max_delay_s={self.config.max_delay_s}, "
            f"flushes={self.stats.flushes})"
        )

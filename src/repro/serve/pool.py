"""Multi-process serving: K acceptor workers behind one address.

A single :class:`~repro.serve.ServingFrontend` tops out when its event
loop saturates — every connection's frame decode and scheduler submit
runs on one loop, on one core.  :class:`WorkerPool` scales past that by
running **K independent acceptor processes** that all listen on the
*same* ``host:port`` via ``SO_REUSEPORT``: the kernel hashes incoming
connections across the listening sockets, so each worker owns a slice
of the connections end-to-end (accept → decode → micro-batch → score →
respond) with no shared locks, no proxy hop, and no GIL contention
between slices.

Sharing the model without sharing memory bugs
---------------------------------------------
Every worker loads the same :class:`~repro.serve.ModelArtifact`
directory *read-only* with ``mmap=True``: the npz tensors are
memory-mapped, so K workers touch one physical copy of the class store
through the page cache instead of K heap copies.  Checksums are
verified exactly once, by the parent, before any worker loads — the
workers skip the redundant SHA-256 pass (``verify=False``) on both
startup and ``load`` broadcasts, so a hot-swap hashes the store one
time, not K times.  Nothing about serving is shared mutable state — each
worker has its own registry, scheduler, and engine — which is exactly
why hot-swap stays race-free.

Control channel
---------------
The parent keeps a pipe to every worker.  ``load``/``promote`` are
broadcast to all workers and each applies the registry operation
locally — the per-worker swap is the same atomic, zero-dropped-request
promote a single server does, and the parent collects one ack per
worker so a deployment knows when the fleet is consistent.  ``stats``
aggregates the per-worker scheduler counters; ``stop`` shuts the
listeners down gracefully.  Every ack is bounded by a per-command
timeout: a worker that died or hung answers with a typed
:class:`~repro.serve.WorkerLost` naming the workers, never a parent
that blocks forever.

Supervision
-----------
Workers are processes and processes die.  :meth:`WorkerPool.supervise_once`
is one deterministic supervision pass — it finds dead acceptors (by
exit code, and optionally by a timed ping for hung-but-alive ones),
respawns them, and replays the recorded ``load``/``promote`` history so
the replacement converges on the fleet's current registry state.
``supervise=True`` runs that pass on a background thread every
``supervise_interval_s``.  Because the kernel only hashes connections
to *live* listening sockets, the surviving workers keep serving during
the respawn: a worker crash degrades capacity, it does not drop the
fleet.

    >>> with WorkerPool("artifacts/isolet", workers=4, port=7411) as pool:
    ...     pool.address                      # ("127.0.0.1", 7411)
    ...     pool.load("artifacts/isolet-v2")  # hot-swap on every worker
    ...     pool.stats()                      # one entry per worker

``prive-hd serve ARTIFACT --listen host:port --workers K`` is the CLI
spelling.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import socket
import threading
import time
from pathlib import Path

from repro.proto.wire import DEFAULT_MAX_FRAME_BYTES
from repro.serve.artifact import ModelArtifact
from repro.serve.errors import WorkerLost
from repro.serve.faults import faults
from repro.serve.frontend import FrontendConfig
from repro.serve.scheduler import MicroBatchConfig

__all__ = ["WorkerPool"]


def _worker_main(
    artifact_path: str | None,
    name: str,
    host: str,
    port: int,
    conn,
    config: MicroBatchConfig | None,
    mmap: bool,
    max_frame_bytes: int,
    supported_versions: tuple[int, ...] | None,
    frontend_config: FrontendConfig | None = None,
    loop: str = "asyncio",
    fleet_dir: str | None = None,
    cache_bytes: int | None = None,
    coalesce: bool = True,
    verify: bool = True,
) -> None:
    """One acceptor process: frontend + registry + control-pipe listener.

    Runs until a ``stop`` command (or parent death — pipe EOF) arrives.
    Control commands execute on the event loop thread, so a ``load``'s
    registry swap is ordered with connection handling exactly like an
    in-process promote: batches in flight finish on their version, the
    next flush resolves the new one, zero requests dropped.

    With ``fleet_dir`` set the worker serves a
    :class:`~repro.serve.fleet.FleetAPI` instead of a single model:
    every worker scans the same tenant directory and runs its own LRU
    cache (residency is per-worker, page-cache sharing comes from the
    mmap loads), and the fleet control ops (``add_tenant``,
    tenant-scoped ``load``/``promote``) apply to each worker's fleet.
    """
    import asyncio

    from repro.serve.api import ServingAPI
    from repro.serve.errors import TenantNotFound
    from repro.serve.fleet import FleetAPI, ModelFleet
    from repro.serve.frontend import ServingFrontend
    from repro.serve.loops import new_event_loop

    # spawn gives this process a fresh interpreter, so the parent's
    # in-memory fault rules do not carry over — the environment does.
    faults.arm_from_env()
    try:
        if fleet_dir is not None:
            api = FleetAPI(
                ModelFleet.from_dir(fleet_dir, cache_bytes=cache_bytes),
                config=config,
                coalesce=coalesce,
            )
        else:
            # verify=False: the pool parent hashed this directory once
            # before spawning the fleet, so K workers skip K redundant
            # full-store SHA-256 passes (shape/dtype still checked).
            api = ServingAPI.from_artifact(
                artifact_path, name=name, config=config, mmap=mmap,
                verify=verify,
            )
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        conn.send({"ready": False, "error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        return

    def _tenant_registry(tenant: str | None):
        """The registry a (possibly tenant-scoped) control op targets."""
        fleet = getattr(api, "fleet", None)
        if fleet is not None:
            return fleet.registry_for(tenant)
        if tenant is not None:
            raise TenantNotFound(
                f"worker serves a single model, not tenant {tenant!r}",
                tenant=tenant,
            )
        return api.registry

    def _tenant_model(tenant: str | None) -> str:
        fleet = getattr(api, "fleet", None)
        if fleet is not None:
            return fleet.resolve(tenant, count=False).model
        return name

    async def _run() -> None:
        frontend = ServingFrontend(
            api,
            host=host,
            port=port,
            max_frame_bytes=max_frame_bytes,
            reuse_port=True,
            supported_versions=supported_versions,
            config=frontend_config,
        )
        try:
            await frontend.start()
        except BaseException as exc:  # noqa: BLE001 — reported to the parent
            conn.send(
                {"ready": False, "error": f"{type(exc).__name__}: {exc}"}
            )
            return
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()

        def on_command() -> None:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                # Parent is gone; shut down rather than orphan the port.
                stopping.set()
                return
            action = faults.fire("worker.control")
            if action is not None:
                if action.action == "drop":
                    return  # swallow the command: the ack never comes
                # delay/stall *block the loop* on purpose — this is what
                # a worker wedged in native code looks like from the
                # parent's side of the pipe.
                time.sleep(action.delay_s)
            op = command.get("op")
            seq = command.get("seq")

            def send_reply(payload: dict) -> None:
                payload["seq"] = seq  # parent matches replies to commands
                try:
                    conn.send(payload)
                except (BrokenPipeError, OSError):
                    stopping.set()

            if op == "load":
                # The disk read (+ SHA-256 verify, unless the parent
                # already hashed this directory and broadcast
                # verify=False) + engine prep of a big artifact must
                # not stall this worker's event loop (and with it every
                # in-flight connection): run it on a thread; only the
                # registry's promote — a dict swap under its own lock —
                # lands synchronously inside it.
                async def do_load() -> None:
                    def _apply() -> int:
                        tenant = command.get("tenant")
                        return _tenant_registry(tenant).load(
                            command.get("model") or _tenant_model(tenant),
                            command["path"],
                            mmap=mmap,
                            verify=command.get("verify", True),
                        )

                    try:
                        version = await loop.run_in_executor(None, _apply)
                        send_reply({"ok": True, "version": version})
                    except Exception as exc:  # noqa: BLE001 — reported
                        send_reply(
                            {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                        )

                loop.create_task(do_load())
                return
            try:
                if op == "stop":
                    reply = {"ok": True}
                    stopping.set()
                elif op == "ping":
                    reply = {"ok": True, "pid": multiprocessing.current_process().pid}
                elif op == "promote":
                    tenant = command.get("tenant")
                    _tenant_registry(tenant).promote(
                        command.get("model") or _tenant_model(tenant),
                        command["version"],
                    )
                    reply = {"ok": True}
                elif op == "add_tenant":
                    fleet = getattr(api, "fleet", None)
                    if fleet is None:
                        reply = {
                            "ok": False,
                            "error": "add_tenant needs a fleet worker "
                                     "(start the pool with fleet_dir=...)",
                        }
                    else:
                        fleet.add_tenant(
                            command["tenant"],
                            command["path"],
                            model=command.get("model") or "model",
                            pin=command.get("pin", False),
                        )
                        reply = {"ok": True}
                elif op == "inject":
                    faults.arm(command["spec"])
                    reply = {"ok": True}
                elif op == "stats":
                    reply = {
                        "ok": True,
                        "stats": api.stats(),
                        "connections_served": frontend.connections_served,
                    }
                else:
                    reply = {"ok": False, "error": f"unknown op {op!r}"}
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            send_reply(reply)

        loop.add_reader(conn.fileno(), on_command)
        conn.send({"ready": True, "port": frontend.address[1]})
        try:
            await stopping.wait()
        finally:
            loop.remove_reader(conn.fileno())
            await frontend.stop()

    # Each acceptor owns its loop outright, so the --loop choice lands
    # here: uvloop when requested and importable, else stdlib asyncio.
    event_loop = new_event_loop(loop)
    asyncio.set_event_loop(event_loop)
    try:
        event_loop.run_until_complete(_run())
    finally:
        try:
            event_loop.close()
        finally:
            asyncio.set_event_loop(None)
            api.close()
            conn.close()


class WorkerPool:
    """K acceptor processes serving one artifact behind one address.

    Parameters
    ----------
    artifact_path:
        Directory of the :class:`~repro.serve.ModelArtifact` every
        worker loads (checksum-verified, read-only).  Mutually
        exclusive with ``fleet_dir``.
    fleet_dir:
        Directory of per-tenant artifact directories: each worker
        serves a :class:`~repro.serve.fleet.FleetAPI` over it, with a
        per-worker ``cache_bytes`` LRU budget (tenants admit lazily;
        the mmap loads share page-cache across workers) and
        cross-tenant coalescing unless ``coalesce=False``.
    cache_bytes, coalesce:
        Fleet-mode knobs, forwarded to each worker's
        :class:`~repro.serve.fleet.ModelFleet` / ``FleetAPI``.
    name:
        Registry name the artifact is served under in each worker.
    workers:
        Acceptor process count.  Aggregate throughput scales with
        available cores until the engines saturate them; on a
        single-core host K workers time-share one core and the pool
        buys isolation, not speed.
    host, port:
        Shared listen address.  ``port=0`` picks a free port once (the
        parent reserves it with an ``SO_REUSEPORT`` placeholder bind)
        and every worker binds it.
    config:
        Micro-batching flush policy for each worker's scheduler.
    mmap:
        Memory-map the artifact tensors (default) so the workers share
        one page-cache copy of the class store; ``False`` gives each
        worker a private heap copy.
    max_frame_bytes:
        Per-frame payload cap forwarded to each worker's frontend.
    supported_versions:
        Protocol versions each worker negotiates (default: all).
    frontend_config:
        :class:`~repro.serve.FrontendConfig` applied to each worker's
        frontend (idle/handshake timeouts, write backpressure).
    loop:
        Event-loop implementation each acceptor runs
        (``"asyncio"``/``"uvloop"``; see :mod:`repro.serve.loops`) —
        ``"uvloop"`` degrades to asyncio with a log line when the
        package is not installed.
    start_timeout_s:
        Seconds to wait for every worker to come up before failing.
    supervise:
        Run a background supervisor thread that calls
        :meth:`supervise_once` every ``supervise_interval_s`` seconds,
        respawning dead workers automatically.
    supervise_interval_s:
        Cadence of the background supervisor passes.
    ping_timeout_s:
        Per-worker ack timeout the supervisor's liveness ping uses; a
        worker that cannot answer within it is treated as hung and
        replaced.

    Raises
    ------
    RuntimeError
        If the platform lacks ``SO_REUSEPORT`` or a worker fails to
        start (the failure message is forwarded).
    """

    def __init__(
        self,
        artifact_path: str | Path | None = None,
        *,
        fleet_dir: str | Path | None = None,
        cache_bytes: int | None = None,
        coalesce: bool = True,
        name: str = "model",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        config: MicroBatchConfig | None = None,
        mmap: bool = True,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        supported_versions: tuple[int, ...] | None = None,
        frontend_config: FrontendConfig | None = None,
        loop: str = "asyncio",
        start_timeout_s: float = 60.0,
        supervise: bool = False,
        supervise_interval_s: float = 0.5,
        ping_timeout_s: float = 5.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if (artifact_path is None) == (fleet_dir is None):
            raise ValueError(
                "give exactly one of artifact_path (single model) or "
                "fleet_dir (multi-tenant fleet)"
            )
        if not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError(
                "WorkerPool needs SO_REUSEPORT, which this platform "
                "does not provide; run a single ServingFrontend instead"
            )
        self.artifact_path = (
            None if artifact_path is None else str(artifact_path)
        )
        self.fleet_dir = None if fleet_dir is None else str(fleet_dir)
        self.name = name
        self.workers = workers
        self.host = host
        self._placeholder: socket.socket | None = None
        if port == 0:
            # Reserve a concrete port for the whole fleet: a bound (but
            # never listening) SO_REUSEPORT socket keeps the number ours
            # without receiving any connections.
            self._placeholder = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((host, 0))
            port = self._placeholder.getsockname()[1]
        self.port = port
        # Verify the artifact ONCE, here in the parent, before any
        # worker exists: the SHA-256 pass over the class store happens
        # one time (and warms the page cache the workers' mmaps hit)
        # instead of K times, and a corrupt artifact fails fast with
        # the parent's traceback rather than K worker-startup errors.
        # A fleet dir is only *listed* here — its tenants load lazily,
        # checksum-verified per admission, so a 10k-tenant fleet does
        # not hash 10k artifacts at startup.
        try:
            if self.fleet_dir is not None:
                root = Path(self.fleet_dir)
                if not any(
                    (entry / "manifest.json").is_file()
                    for entry in root.iterdir()
                    if entry.is_dir()
                ):
                    raise ValueError(
                        f"fleet dir {root} holds no artifact "
                        "subdirectories"
                    )
            else:
                ModelArtifact.load(self.artifact_path, mmap=True)
        except Exception as exc:
            if self._placeholder is not None:
                self._placeholder.close()
                self._placeholder = None
            raise RuntimeError(
                f"worker pool failed to start: {exc}"
            ) from exc
        self._spawn_args = (
            config,
            mmap,
            max_frame_bytes,
            supported_versions,
            frontend_config,
            loop,
            self.fleet_dir,
            cache_bytes,
            coalesce,
            # verify: the parent just hashed a single artifact, so its
            # workers skip the re-hash; fleet workers verify lazily at
            # each tenant's admission instead.
            self.fleet_dir is not None,
        )
        self._start_timeout_s = start_timeout_s
        self._ping_timeout_s = ping_timeout_s
        self._supervise_interval_s = supervise_interval_s
        self._stopped = False
        self._seq = 0
        self.restarts = 0
        # One reentrant lock orders fleet operations, supervision
        # passes, and shutdown against each other: a respawn can never
        # swap a worker's pipe out from under a broadcast in flight.
        self._lock = threading.RLock()
        # Replayed onto respawned workers so they converge on the
        # fleet's current registry state (see _respawn).
        self._registry_log: list[dict] = []
        self._supervisor: threading.Thread | None = None
        self._supervisor_stop = threading.Event()
        self._procs: list = []
        self._conns: list = []
        try:
            for _ in range(workers):
                proc, conn = self._spawn_worker()
                self._procs.append(proc)
                self._conns.append(conn)
            for index, conn in enumerate(self._conns):
                self._await_ready(index, conn)
        except BaseException:
            self.stop()
            raise
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="worker-pool-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def _spawn_worker(self):
        """Start one acceptor process; returns ``(proc, parent_conn)``.

        spawn, not fork: each worker gets a clean interpreter (no
        inherited locks or event loops), and the page-cache sharing
        comes from mmap rather than fork-time copy-on-write.
        """
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(
                self.artifact_path,
                self.name,
                self.host,
                self.port,
                child_conn,
                *self._spawn_args,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _await_ready(self, index: int, conn) -> None:
        """Block until worker ``index`` reports its listener is bound."""
        if not conn.poll(self._start_timeout_s):
            raise RuntimeError(
                f"worker {index} did not start within "
                f"{self._start_timeout_s}s"
            )
        ready = conn.recv()
        if not ready.get("ready"):
            raise RuntimeError(
                f"worker {index} failed to start: "
                f"{ready.get('error', 'unknown error')}"
            )

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The shared ``(host, port)`` every worker listens on."""
        return self.host, self.port

    @staticmethod
    def _recv_matching(conn, seq: int, deadline: float):
        """The reply whose ``seq`` matches, or ``None`` on timeout/EOF.

        Replies to *earlier* commands that timed out may still be
        sitting in the pipe; the sequence number lets us discard them
        instead of mis-attributing them to the current command (which
        would leave the channel off by one forever).
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                if not conn.poll(remaining):
                    return None
                reply = conn.recv()
            except (EOFError, OSError):
                return None
            if reply.get("seq") == seq:
                return reply
            # stale reply from a previously timed-out command: drop it

    def _broadcast(self, command: dict, *, timeout_s: float = 60.0) -> list:
        """Send one control command to every worker; collect the acks.

        A partially-applied fleet operation is loud, never silent — and
        *typed*: workers whose pipe broke or that never acked within
        ``timeout_s`` raise :class:`~repro.serve.WorkerLost` naming
        them (the supervisor's cue to replace them); workers that
        answered with an application error raise ``RuntimeError``.  The
        parent never blocks past the deadline on a dead worker.
        """
        with self._lock:
            if self._stopped:
                raise RuntimeError("pool is stopped")
            self._seq += 1
            command = dict(command, seq=self._seq)
            lost: list[int] = []
            sent: set[int] = set()
            for index, conn in enumerate(self._conns):
                try:
                    conn.send(command)
                    sent.add(index)
                except (BrokenPipeError, OSError):
                    lost.append(index)
            deadline = time.monotonic() + timeout_s
            replies = []
            errors = []
            for index, conn in enumerate(self._conns):
                if index not in sent:
                    replies.append(None)
                    continue
                reply = self._recv_matching(conn, self._seq, deadline)
                replies.append(reply)
                if reply is None:
                    lost.append(index)
                elif not reply.get("ok"):
                    errors.append(
                        f"worker {index}: "
                        f"{reply.get('error', 'unknown error')}"
                    )
            if lost:
                raise WorkerLost(
                    f"{command.get('op')}: no ack from worker(s) "
                    f"{sorted(lost)} within {timeout_s}s "
                    "(dead or hung; supervise_once() replaces them)",
                    workers=sorted(lost),
                )
            if errors:
                raise RuntimeError(
                    f"{command.get('op')} failed on {len(errors)}/"
                    f"{len(self._conns)} workers: " + "; ".join(errors)
                )
            return replies

    def _command_one(
        self, index: int, command: dict, *, timeout_s: float
    ) -> dict | None:
        """One command to one worker; the ack, or ``None`` if lost."""
        with self._lock:
            self._seq += 1
            conn = self._conns[index]
            try:
                conn.send(dict(command, seq=self._seq))
            except (BrokenPipeError, OSError):
                return None
            return self._recv_matching(
                conn, self._seq, time.monotonic() + timeout_s
            )

    # ------------------------------------------------------------------
    # fleet-wide registry operations
    # ------------------------------------------------------------------
    def ping(self, *, timeout_s: float = 5.0) -> list[int]:
        """Liveness check; returns each worker's PID.

        Raises :class:`~repro.serve.WorkerLost` (naming the workers)
        when any worker fails to ack within ``timeout_s``.
        """
        return [
            r["pid"]
            for r in self._broadcast({"op": "ping"}, timeout_s=timeout_s)
        ]

    def load(
        self,
        path: str | Path,
        *,
        model: str | None = None,
        tenant: str | None = None,
    ) -> int:
        """Hot-swap every worker to a new artifact directory.

        ``tenant`` scopes the swap to one fleet tenant's registry
        (fleet pools only) — the same zero-dropped-request promote,
        applied to that tenant on every worker.

        Each worker loads (checksum-verified) and promotes the artifact
        through its local registry — the same atomic swap a single
        server does, so no worker drops a request.  Returns the version
        number the fleet converged on; raises if any worker failed or
        the workers disagree (which would mean their registries have
        diverged).

        Checksum verification happens exactly once, in the parent,
        before the broadcast: a corrupt artifact is rejected here with
        no worker registry touched, and the K workers load with
        ``verify=False`` — shape/dtype still checked, but the
        full-store SHA-256 pass is not repeated K times per swap (the
        parent's pass also warmed the page cache their mmaps read).

        Crash-mid-swap safety: the command is recorded in the replay
        log *before* it is broadcast, so if a worker dies mid-swap
        (:class:`~repro.serve.WorkerLost`), the survivors have applied
        it and the respawned replacement replays it — the fleet
        converges instead of serving two model versions forever.  If
        the load failed with an application error (bad path), no
        registry changed and the entry is rolled back.
        """
        try:
            ModelArtifact.load(path, mmap=True)
        except Exception as exc:
            # Rejected in the parent: no broadcast, no worker registry
            # touched, no replay-log entry to roll back.
            raise RuntimeError(f"load failed: {exc}") from exc
        entry = {
            "op": "load",
            "path": str(path),
            "model": model,
            "tenant": tenant,
            "verify": False,
        }
        with self._lock:
            self._registry_log.append(entry)
            try:
                replies = self._broadcast(entry)
            except WorkerLost:
                raise  # survivors applied it; keep the entry for replay
            except BaseException:
                self._registry_log.remove(entry)
                raise
        versions = sorted({r["version"] for r in replies})
        if len(versions) != 1:
            raise RuntimeError(
                f"workers diverged: new artifact got versions {versions}"
            )
        return versions[0]

    def promote(
        self,
        version: int,
        *,
        model: str | None = None,
        tenant: str | None = None,
    ) -> None:
        """Atomically point every worker at an already-loaded version.

        The rollback path: after ``load`` bumped the fleet to vN,
        ``promote(vN-1)`` swings every worker back with zero dropped
        requests.  Recorded in the replay log exactly like ``load``.
        ``tenant`` scopes the promote to one fleet tenant.
        """
        entry = {
            "op": "promote",
            "version": int(version),
            "model": model,
            "tenant": tenant,
        }
        with self._lock:
            self._registry_log.append(entry)
            try:
                self._broadcast(entry)
            except WorkerLost:
                raise  # survivors applied it; keep the entry for replay
            except BaseException:
                self._registry_log.remove(entry)
                raise

    def add_tenant(
        self,
        tenant: str,
        path: str | Path,
        *,
        model: str = "model",
        pin: bool = False,
    ) -> None:
        """Register a new fleet tenant on every worker (fleet pools only).

        The registration is lazy on each worker (a path, not a load —
        each worker's LRU cache admits the tenant on first traffic) and
        is recorded in the replay log, so a respawned worker converges
        on the same tenant set.
        """
        entry = {
            "op": "add_tenant",
            "tenant": tenant,
            "path": str(path),
            "model": model,
            "pin": pin,
        }
        with self._lock:
            self._registry_log.append(entry)
            try:
                self._broadcast(entry)
            except WorkerLost:
                raise  # survivors applied it; keep the entry for replay
            except BaseException:
                self._registry_log.remove(entry)
                raise

    def stats(self) -> list[dict]:
        """Per-worker scheduler counters + connections served."""
        return [
            {
                "stats": r["stats"],
                "connections_served": r["connections_served"],
            }
            for r in self._broadcast({"op": "stats"})
        ]

    def inject(self, spec: str, *, worker: int | None = None) -> None:
        """Arm a fault rule (see :mod:`repro.serve.faults`) in workers.

        ``worker=None`` arms every worker; an index arms exactly one —
        how the chaos harness makes *one* acceptor of a fleet crash on
        its Nth control command while its siblings stay healthy.
        """
        if worker is None:
            self._broadcast({"op": "inject", "spec": spec})
            return
        reply = self._command_one(
            worker, {"op": "inject", "spec": spec}, timeout_s=10.0
        )
        if reply is None:
            raise WorkerLost(
                f"inject: no ack from worker {worker}", workers=(worker,)
            )
        if not reply.get("ok"):
            raise RuntimeError(
                f"inject failed on worker {worker}: "
                f"{reply.get('error', 'unknown error')}"
            )

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def alive(self) -> list[bool]:
        """Per-worker process liveness (exit-code check, no pipe I/O)."""
        return [proc.is_alive() for proc in self._procs]

    def kill_worker(self, index: int) -> int:
        """Hard-kill worker ``index`` (SIGKILL); returns its old PID.

        The chaos hook: simulates an acceptor crashing mid-traffic.
        The kernel stops hashing new connections to the dead listener,
        so surviving workers keep serving; in-flight requests on the
        killed worker's connections fail at the socket and are the
        client's to retry.  :meth:`supervise_once` replaces the worker.
        """
        proc = self._procs[index]
        pid = proc.pid
        proc.kill()
        proc.join(timeout=10.0)
        return pid

    def supervise_once(self, *, ping: bool = False) -> list[int]:
        """One deterministic supervision pass; respawned worker indices.

        Finds workers that died (exit code) — and, with ``ping=True``,
        workers that are alive but cannot ack a ping within the pool's
        ``ping_timeout_s`` (wedged event loop, stuck native call) —
        terminates what is left of them, and respawns replacements that
        replay the recorded ``load``/``promote`` history so their
        registries converge on the fleet's current state.  Tests call
        this directly for sleep-free determinism; ``supervise=True``
        runs it on the background thread.
        """
        with self._lock:
            if self._stopped:
                return []
            respawned = []
            for index, proc in enumerate(self._procs):
                # is_alive() alone has a blind spot: a just-crashed
                # child delivers its pipe EOF (what made a broadcast
                # raise WorkerLost) a beat before the process is
                # reapable, so waitpid still says "alive".  The
                # sentinel becomes ready at fd-teardown — the same
                # moment as that EOF — closing the window.
                dead = (
                    not proc.is_alive()
                    or bool(
                        multiprocessing.connection.wait(
                            [proc.sentinel], timeout=0
                        )
                    )
                )
                if not dead and ping:
                    reply = self._command_one(
                        index,
                        {"op": "ping"},
                        timeout_s=self._ping_timeout_s,
                    )
                    dead = reply is None
                if dead:
                    self._respawn(index)
                    respawned.append(index)
            return respawned

    def _respawn(self, index: int) -> None:
        """Replace worker ``index`` with a fresh, converged process."""
        old_proc = self._procs[index]
        old_conn = self._conns[index]
        if old_proc.is_alive():
            old_proc.terminate()
            old_proc.join(timeout=10.0)
            if old_proc.is_alive():  # pragma: no cover - defensive
                old_proc.kill()
                old_proc.join(timeout=10.0)
        try:
            old_conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        proc, conn = self._spawn_worker()
        self._await_ready(index, conn)
        # Replay the registry history on the replacement *before* it is
        # visible to fleet operations, so a concurrent load() can never
        # interleave with the catch-up (we hold the lock throughout).
        for entry in self._registry_log:
            try:
                conn.send(dict(entry, seq=0))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerLost(
                    f"respawned worker {index} died during registry "
                    "replay",
                    workers=(index,),
                ) from exc
            reply = self._recv_matching(
                conn, 0, time.monotonic() + self._start_timeout_s
            )
            if reply is None or not reply.get("ok"):
                detail = (
                    "no reply"
                    if reply is None
                    else reply.get("error", "unknown error")
                )
                raise WorkerLost(
                    f"respawned worker {index} failed to replay "
                    f"{entry.get('op')}: {detail}",
                    workers=(index,),
                )
        self._procs[index] = proc
        self._conns[index] = conn
        self.restarts += 1

    def _supervise_loop(self) -> None:
        while not self._supervisor_stop.wait(self._supervise_interval_s):
            try:
                self.supervise_once(ping=True)
            except Exception:  # noqa: BLE001 — supervision must survive
                # A failed respawn is retried on the next pass; the
                # failure itself also surfaces on the next fleet op.
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self, *, timeout_s: float = 30.0) -> None:
        """Stop every worker and release the shared port (idempotent)."""
        if self._supervisor is not None:
            self._supervisor_stop.set()
            self._supervisor.join(timeout=timeout_s)
            self._supervisor = None
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._seq += 1
            for conn in self._conns:
                try:
                    conn.send({"op": "stop", "seq": self._seq})
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + timeout_s
            for conn in self._conns:
                self._recv_matching(conn, self._seq, deadline)
                conn.close()
            for proc in self._procs:
                proc.join(timeout=timeout_s)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=5.0)
            if self._placeholder is not None:
                self._placeholder.close()
                self._placeholder = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._stopped else f"{self.workers} workers"
        source = self.artifact_path or self.fleet_dir
        return (
            f"WorkerPool({source!r}, {state}, "
            f"{self.host}:{self.port})"
        )

"""Multi-process serving: K acceptor workers behind one address.

A single :class:`~repro.serve.ServingFrontend` tops out when its event
loop saturates — every connection's frame decode and scheduler submit
runs on one loop, on one core.  :class:`WorkerPool` scales past that by
running **K independent acceptor processes** that all listen on the
*same* ``host:port`` via ``SO_REUSEPORT``: the kernel hashes incoming
connections across the listening sockets, so each worker owns a slice
of the connections end-to-end (accept → decode → micro-batch → score →
respond) with no shared locks, no proxy hop, and no GIL contention
between slices.

Sharing the model without sharing memory bugs
---------------------------------------------
Every worker loads the same checksum-verified
:class:`~repro.serve.ModelArtifact` directory *read-only* with
``mmap=True``: the npz tensors are memory-mapped, so K workers touch one
physical copy of the class store through the page cache instead of K
heap copies.  Nothing about serving is shared mutable state — each
worker has its own registry, scheduler, and engine — which is exactly
why hot-swap stays race-free.

Control channel
---------------
The parent keeps a pipe to every worker.  ``load``/``promote`` are
broadcast to all workers and each applies the registry operation
locally — the per-worker swap is the same atomic, zero-dropped-request
promote a single server does, and the parent collects one ack per
worker so a deployment knows when the fleet is consistent.  ``stats``
aggregates the per-worker scheduler counters; ``stop`` shuts the
listeners down gracefully.

    >>> with WorkerPool("artifacts/isolet", workers=4, port=7411) as pool:
    ...     pool.address                      # ("127.0.0.1", 7411)
    ...     pool.load("artifacts/isolet-v2")  # hot-swap on every worker
    ...     pool.stats()                      # one entry per worker

``prive-hd serve ARTIFACT --listen host:port --workers K`` is the CLI
spelling.
"""

from __future__ import annotations

import multiprocessing
import socket
import time
from pathlib import Path

from repro.proto.wire import DEFAULT_MAX_FRAME_BYTES
from repro.serve.scheduler import MicroBatchConfig

__all__ = ["WorkerPool"]


def _worker_main(
    artifact_path: str,
    name: str,
    host: str,
    port: int,
    conn,
    config: MicroBatchConfig | None,
    mmap: bool,
    max_frame_bytes: int,
    supported_versions: tuple[int, ...] | None,
) -> None:
    """One acceptor process: frontend + registry + control-pipe listener.

    Runs until a ``stop`` command (or parent death — pipe EOF) arrives.
    Control commands execute on the event loop thread, so a ``load``'s
    registry swap is ordered with connection handling exactly like an
    in-process promote: batches in flight finish on their version, the
    next flush resolves the new one, zero requests dropped.
    """
    import asyncio

    from repro.serve.api import ServingAPI
    from repro.serve.frontend import ServingFrontend

    try:
        api = ServingAPI.from_artifact(
            artifact_path, name=name, config=config, mmap=mmap
        )
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        conn.send({"ready": False, "error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        return

    async def _run() -> None:
        frontend = ServingFrontend(
            api,
            host=host,
            port=port,
            max_frame_bytes=max_frame_bytes,
            reuse_port=True,
            supported_versions=supported_versions,
        )
        try:
            await frontend.start()
        except BaseException as exc:  # noqa: BLE001 — reported to the parent
            conn.send(
                {"ready": False, "error": f"{type(exc).__name__}: {exc}"}
            )
            return
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()

        def on_command() -> None:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                # Parent is gone; shut down rather than orphan the port.
                stopping.set()
                return
            op = command.get("op")
            seq = command.get("seq")

            def send_reply(payload: dict) -> None:
                payload["seq"] = seq  # parent matches replies to commands
                try:
                    conn.send(payload)
                except (BrokenPipeError, OSError):
                    stopping.set()

            if op == "load":
                # The disk read + SHA-256 verify + engine prep of a big
                # artifact must not stall this worker's event loop (and
                # with it every in-flight connection): run it on a
                # thread; only the registry's promote — a dict swap
                # under its own lock — lands synchronously inside it.
                async def do_load() -> None:
                    try:
                        version = await loop.run_in_executor(
                            None,
                            lambda: api.registry.load(
                                command.get("model") or name,
                                command["path"],
                                mmap=mmap,
                            ),
                        )
                        send_reply({"ok": True, "version": version})
                    except Exception as exc:  # noqa: BLE001 — reported
                        send_reply(
                            {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                        )

                loop.create_task(do_load())
                return
            try:
                if op == "stop":
                    reply = {"ok": True}
                    stopping.set()
                elif op == "ping":
                    reply = {"ok": True, "pid": multiprocessing.current_process().pid}
                elif op == "promote":
                    api.registry.promote(
                        command.get("model") or name, command["version"]
                    )
                    reply = {"ok": True}
                elif op == "stats":
                    reply = {
                        "ok": True,
                        "stats": api.stats(),
                        "connections_served": frontend.connections_served,
                    }
                else:
                    reply = {"ok": False, "error": f"unknown op {op!r}"}
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            send_reply(reply)

        loop.add_reader(conn.fileno(), on_command)
        conn.send({"ready": True, "port": frontend.address[1]})
        try:
            await stopping.wait()
        finally:
            loop.remove_reader(conn.fileno())
            await frontend.stop()

    try:
        asyncio.run(_run())
    finally:
        api.close()
        conn.close()


class WorkerPool:
    """K acceptor processes serving one artifact behind one address.

    Parameters
    ----------
    artifact_path:
        Directory of the :class:`~repro.serve.ModelArtifact` every
        worker loads (checksum-verified, read-only).
    name:
        Registry name the artifact is served under in each worker.
    workers:
        Acceptor process count.  Aggregate throughput scales with
        available cores until the engines saturate them; on a
        single-core host K workers time-share one core and the pool
        buys isolation, not speed.
    host, port:
        Shared listen address.  ``port=0`` picks a free port once (the
        parent reserves it with an ``SO_REUSEPORT`` placeholder bind)
        and every worker binds it.
    config:
        Micro-batching flush policy for each worker's scheduler.
    mmap:
        Memory-map the artifact tensors (default) so the workers share
        one page-cache copy of the class store; ``False`` gives each
        worker a private heap copy.
    max_frame_bytes:
        Per-frame payload cap forwarded to each worker's frontend.
    supported_versions:
        Protocol versions each worker negotiates (default: all).
    start_timeout_s:
        Seconds to wait for every worker to come up before failing.

    Raises
    ------
    RuntimeError
        If the platform lacks ``SO_REUSEPORT`` or a worker fails to
        start (the failure message is forwarded).
    """

    def __init__(
        self,
        artifact_path: str | Path,
        *,
        name: str = "model",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        config: MicroBatchConfig | None = None,
        mmap: bool = True,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        supported_versions: tuple[int, ...] | None = None,
        start_timeout_s: float = 60.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError(
                "WorkerPool needs SO_REUSEPORT, which this platform "
                "does not provide; run a single ServingFrontend instead"
            )
        self.artifact_path = str(artifact_path)
        self.name = name
        self.workers = workers
        self.host = host
        self._placeholder: socket.socket | None = None
        if port == 0:
            # Reserve a concrete port for the whole fleet: a bound (but
            # never listening) SO_REUSEPORT socket keeps the number ours
            # without receiving any connections.
            self._placeholder = socket.socket(
                socket.AF_INET, socket.SOCK_STREAM
            )
            self._placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._placeholder.bind((host, 0))
            port = self._placeholder.getsockname()[1]
        self.port = port
        self._stopped = False
        self._seq = 0
        # spawn, not fork: each worker gets a clean interpreter (no
        # inherited locks or event loops), and the page-cache sharing
        # comes from mmap rather than fork-time copy-on-write.
        ctx = multiprocessing.get_context("spawn")
        self._procs: list = []
        self._conns: list = []
        try:
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        self.artifact_path,
                        name,
                        host,
                        port,
                        child_conn,
                        config,
                        mmap,
                        max_frame_bytes,
                        supported_versions,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for index, conn in enumerate(self._conns):
                if not conn.poll(start_timeout_s):
                    raise RuntimeError(
                        f"worker {index} did not start within "
                        f"{start_timeout_s}s"
                    )
                ready = conn.recv()
                if not ready.get("ready"):
                    raise RuntimeError(
                        f"worker {index} failed to start: "
                        f"{ready.get('error', 'unknown error')}"
                    )
        except BaseException:
            self.stop()
            raise

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The shared ``(host, port)`` every worker listens on."""
        return self.host, self.port

    @staticmethod
    def _recv_matching(conn, seq: int, deadline: float):
        """The reply whose ``seq`` matches, or ``None`` on timeout/EOF.

        Replies to *earlier* commands that timed out may still be
        sitting in the pipe; the sequence number lets us discard them
        instead of mis-attributing them to the current command (which
        would leave the channel off by one forever).
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                if not conn.poll(remaining):
                    return None
                reply = conn.recv()
            except (EOFError, OSError):
                return None
            if reply.get("seq") == seq:
                return reply
            # stale reply from a previously timed-out command: drop it

    def _broadcast(self, command: dict, *, timeout_s: float = 60.0) -> list:
        """Send one control command to every worker; collect the acks.

        Raises ``RuntimeError`` naming each worker whose reply was an
        error or that timed out — a partially-applied fleet operation is
        loud, never silent.
        """
        if self._stopped:
            raise RuntimeError("pool is stopped")
        self._seq += 1
        command = dict(command, seq=self._seq)
        for conn in self._conns:
            conn.send(command)
        deadline = time.monotonic() + timeout_s
        replies = []
        failures = []
        for index, conn in enumerate(self._conns):
            reply = self._recv_matching(conn, self._seq, deadline)
            replies.append(reply)
            if reply is None:
                failures.append(f"worker {index}: no reply in {timeout_s}s")
            elif not reply.get("ok"):
                failures.append(
                    f"worker {index}: {reply.get('error', 'unknown error')}"
                )
        if failures:
            raise RuntimeError(
                f"{command.get('op')} failed on {len(failures)}/"
                f"{len(self._conns)} workers: " + "; ".join(failures)
            )
        return replies

    # ------------------------------------------------------------------
    # fleet-wide registry operations
    # ------------------------------------------------------------------
    def ping(self) -> list[int]:
        """Liveness check; returns each worker's PID."""
        return [r["pid"] for r in self._broadcast({"op": "ping"})]

    def load(self, path: str | Path, *, model: str | None = None) -> int:
        """Hot-swap every worker to a new artifact directory.

        Each worker loads (checksum-verified) and promotes the artifact
        through its local registry — the same atomic swap a single
        server does, so no worker drops a request.  Returns the version
        number the fleet converged on; raises if any worker failed or
        the workers disagree (which would mean their registries have
        diverged).
        """
        replies = self._broadcast(
            {"op": "load", "path": str(path), "model": model}
        )
        versions = sorted({r["version"] for r in replies})
        if len(versions) != 1:
            raise RuntimeError(
                f"workers diverged: new artifact got versions {versions}"
            )
        return versions[0]

    def promote(self, version: int, *, model: str | None = None) -> None:
        """Atomically point every worker at an already-loaded version.

        The rollback path: after ``load`` bumped the fleet to vN,
        ``promote(vN-1)`` swings every worker back with zero dropped
        requests.
        """
        self._broadcast(
            {"op": "promote", "version": int(version), "model": model}
        )

    def stats(self) -> list[dict]:
        """Per-worker scheduler counters + connections served."""
        return [
            {
                "stats": r["stats"],
                "connections_served": r["connections_served"],
            }
            for r in self._broadcast({"op": "stats"})
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self, *, timeout_s: float = 30.0) -> None:
        """Stop every worker and release the shared port (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self._seq += 1
        for conn in self._conns:
            try:
                conn.send({"op": "stop", "seq": self._seq})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout_s
        for conn in self._conns:
            self._recv_matching(conn, self._seq, deadline)
            conn.close()
        for proc in self._procs:
            proc.join(timeout=timeout_s)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._stopped else f"{self.workers} workers"
        return (
            f"WorkerPool({self.artifact_path!r}, {state}, "
            f"{self.host}:{self.port})"
        )

"""Typed overload/failure errors shared by every serving layer.

The overload-safe serving contract is built on three exceptions that
cross layer boundaries with *meaning* attached, instead of generic
``RuntimeError`` strings each caller has to pattern-match:

* :class:`Overloaded` — the scheduler's admission control refused a
  request because the queue is past its row or age bound.  Carries a
  ``retry_after_ms`` hint derived from the observed drain rate, so
  well-behaved clients back off for roughly one queue-drain instead of
  hammering a saturated server.  The frontend maps it to the
  ``"overloaded"`` wire code.
* :class:`DeadlineExceeded` — a request's deadline expired while it
  waited in the queue; the scheduler dropped it *before* scoring (work
  the caller no longer wants is work the fleet should not do).  Maps to
  the ``"deadline-exceeded"`` wire code.
* :class:`WorkerLost` — a :class:`~repro.serve.WorkerPool` control
  command could not be acknowledged because the worker process died or
  hung past the ack timeout.  The pool raises it instead of blocking
  forever, and the supervisor (if enabled) respawns the worker in the
  background.
* :class:`TenantNotFound` — a protocol-v4 request addressed a fleet
  tenant the :class:`~repro.serve.fleet.ModelFleet` does not host.
  Maps to the ``"unknown-tenant"`` wire code, which is *non-retryable*
  (the tenant will not appear by waiting; the client raises this same
  exception instead of backing off).

All are exported from :mod:`repro.serve`, so callers catch them by
type; over the wire they travel as :class:`~repro.proto.ErrorReply`
codes (see ``docs/operations.md`` for the full error-code table).
"""

from __future__ import annotations

__all__ = ["Overloaded", "DeadlineExceeded", "WorkerLost", "TenantNotFound"]


class Overloaded(RuntimeError):
    """Admission control refused a request: the queue is saturated.

    Attributes
    ----------
    retry_after_ms:
        Server-estimated milliseconds until the queue has likely
        drained enough to accept this request — the client backoff
        hint carried on the wire (``retry_after_ms=N`` prefix of the
        ``"overloaded"`` :class:`~repro.proto.ErrorReply` message).
    queued_rows:
        Rows pending at rejection time (diagnostic).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_ms: int = 50,
        queued_rows: int = 0,
    ):
        super().__init__(message)
        self.retry_after_ms = max(1, int(retry_after_ms))
        self.queued_rows = int(queued_rows)


class DeadlineExceeded(TimeoutError):
    """A request's deadline expired before it could be scored.

    Raised on the request's future when the scheduler drops it from the
    queue (the flush loop checks deadlines *before* stacking a batch,
    so expired work never reaches the kernel), and by layers that
    receive a request whose budget is already spent on arrival.
    """


class WorkerLost(RuntimeError):
    """A pool worker died or stopped acknowledging control commands.

    Attributes
    ----------
    workers:
        Indices of the workers that failed to acknowledge.
    """

    def __init__(self, message: str, *, workers: tuple[int, ...] = ()):
        super().__init__(message)
        self.workers = tuple(int(w) for w in workers)


class TenantNotFound(LookupError):
    """A request addressed a tenant key the fleet does not host.

    Deliberately a :class:`LookupError` (not :class:`KeyError`, which
    the frontend maps to ``"unknown-model"``) so the error-reply mapper
    can tell a missing *tenant* from a missing *model* inside a hosted
    tenant.  Travels as the non-retryable ``"unknown-tenant"`` wire
    code and is re-raised by :class:`~repro.client.PriveHDClient`.

    Attributes
    ----------
    tenant:
        The tenant key that failed to resolve.
    """

    def __init__(self, message: str, *, tenant: str | None = None):
        super().__init__(message)
        self.tenant = tenant

"""The one typed serving surface every entry point goes through.

Before this module, a deployment had three ways in — raw
:class:`~repro.serve.InferenceEngine` calls (with representation kwargs
like ``store_is_quantized``/``keep_mask`` leaking into callers),
:class:`~repro.serve.ModelServer` micro-batched calls, and now a
network frontend — each with its own argument conventions.
:class:`ServingAPI` is the narrow waist that unifies them: the CLI, the
benchmarks, and the socket frontend all speak *this* class, and this
class speaks the typed :mod:`repro.proto` vocabulary
(:class:`~repro.proto.ScoreRequest` in,
:class:`~repro.proto.ScoreResponse` out), so engine construction
details stay behind :meth:`~repro.serve.ModelArtifact.engine` where
they belong.

    >>> api = ServingAPI.from_artifact("artifacts/isolet-v1")
    >>> api.predict(encoded_queries)             # micro-batched labels
    >>> api.score(ScoreRequest(queries=packed))  # the wire entry point
    >>> api.info()                               # typed ModelInfo
    >>> api.health(), api.stats()                # ops endpoints (JSON-safe)

Every query path is micro-batched through the underlying
:class:`~repro.serve.ModelServer`; registry mutations (publish /
promote / rollback) hot-swap between flushes with zero dropped
requests, exactly as before — the API adds types, not a new execution
path.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from repro.backend.packed import PackedHV
from repro.proto.messages import (
    ModelInfo,
    ScoreBatchRequest,
    ScoreBatchResponse,
    ScoreRequest,
    ScoreResponse,
)
from repro.serve.artifact import ModelArtifact
from repro.serve.errors import TenantNotFound
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicroBatchConfig
from repro.serve.server import ModelServer

__all__ = ["ServingAPI"]


class ServingAPI:
    """Typed facade over a micro-batched, hot-swappable model registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.ModelRegistry` to serve; ``None``
        creates an empty one (reachable as :attr:`registry`).
    default_model:
        Name assumed when calls omit ``model=``; optional when the
        registry serves exactly one name.
    config:
        Micro-batching flush policy shared by all entry points.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        default_model: str | None = None,
        config: MicroBatchConfig | None = None,
    ):
        self._server = ModelServer(
            registry, default_model=default_model, config=config
        )

    # ------------------------------------------------------------------
    # construction sugar
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        artifact: ModelArtifact | str | Path,
        *,
        name: str = "model",
        config: MicroBatchConfig | None = None,
        engine_kwargs: dict | None = None,
        mmap: bool = False,
        verify: bool = True,
    ) -> "ServingAPI":
        """Serve one artifact (object or directory path) under ``name``.

        All engine construction happens inside
        :meth:`~repro.serve.ModelArtifact.engine` — callers never touch
        ``store_is_quantized``, ``keep_mask``, or backend plumbing.
        ``mmap=True`` (paths only) maps the tensors read-only instead of
        copying them, so co-hosted processes share pages.
        ``verify=False`` skips the checksum pass when a supervising
        parent already verified the directory (see
        :meth:`~repro.serve.ModelArtifact.load`).
        """
        registry = ModelRegistry()
        if isinstance(artifact, (str, Path)):
            registry.load(
                name,
                artifact,
                engine_kwargs=engine_kwargs,
                mmap=mmap,
                verify=verify,
            )
        else:
            registry.publish(name, artifact, engine_kwargs=engine_kwargs)
        return cls(registry, default_model=name, config=config)

    @property
    def registry(self) -> ModelRegistry:
        """The live registry — publish/promote on it to hot-swap."""
        return self._server.registry

    @property
    def server(self) -> ModelServer:
        """The underlying micro-batching server."""
        return self._server

    @property
    def default_model(self) -> str | None:
        """Name served when a call omits ``model=`` (``None`` = unset)."""
        return self._server.default_model

    # ------------------------------------------------------------------
    # array entry points (thread-safe, micro-batched)
    # ------------------------------------------------------------------
    def predict(self, queries, *, model: str | None = None) -> np.ndarray:
        """Labels for encoded query hypervectors (dense rows)."""
        return self._server.predict(queries, model=model)

    def scores(self, queries, *, model: str | None = None) -> np.ndarray:
        """Eq. (4) class scores for encoded query hypervectors."""
        return self._server.scores(queries, model=model)

    def predict_features(self, X, *, model: str | None = None) -> np.ndarray:
        """Labels for raw features — **in-process callers only**.

        The artifact must carry an encoder config.  This entry point
        deliberately has no wire equivalent: the network protocol cannot
        express raw features, so remote callers encode client-side
        (:class:`~repro.client.PriveHDClient`) and use :meth:`score`.
        """
        return self._server.predict_features(X, model=model)

    def submit(
        self, queries, *, model: str | None = None, method: str = "predict"
    ) -> Future:
        """Non-blocking array submission (see :meth:`ModelServer.submit`)."""
        return self._server.submit(queries, model=model, method=method)

    # ------------------------------------------------------------------
    # typed protocol entry points (what the frontend calls)
    # ------------------------------------------------------------------
    def score(self, request: ScoreRequest) -> ScoreResponse:
        """Answer one typed request synchronously."""
        return self.submit_score(request).result()

    def score_batch(self, request: ScoreBatchRequest) -> ScoreBatchResponse:
        """Answer one typed batch request synchronously."""
        return self.submit_score_batch(request).result()

    def _submit_queries(self, queries, model, want_scores, d_hv, deadline):
        """Shared submit plumbing: resolve, shape-check, enqueue once.

        Returns ``(name, method, raw_future)``; packed bit-plane queries
        stay packed through the micro-batcher (their uint64 planes ride
        the scheduler as plane rows, 16x smaller than dense, and the
        packed backend consumes the rebuilt batch natively).  Raises
        ``KeyError`` for unknown models, ``ValueError`` for shape
        mismatches, :class:`~repro.serve.Overloaded` when admission
        control rejects, and :class:`~repro.serve.DeadlineExceeded`
        when ``deadline`` already passed (the frontend maps each to its
        typed :class:`~repro.proto.ErrorReply` code).
        """
        name = self._server.resolve_name(model)
        record = self.registry.describe(name)
        engine = record.engine
        if d_hv != engine.d_hv:
            raise ValueError(
                f"queries have {d_hv} dimensions but model "
                f"{name!r} serves {engine.d_hv}"
            )
        if isinstance(queries, PackedHV):
            method = "scores_packed" if want_scores else "predict_packed"
            raw = self._server.submit_packed(
                queries, model=name, want_scores=want_scores,
                deadline=deadline,
            )
        else:
            method = "scores" if want_scores else "predict"
            raw = self._server.submit(
                queries, model=name, method=method, deadline=deadline
            )
        return name, method, raw

    @staticmethod
    def _check_tenant(tenant: str | None) -> None:
        """Refuse tenant-addressed requests on a single-model server.

        A v4 client that *explicitly* asked for a tenant must not be
        silently answered by whatever model this server happens to
        serve — that would be the wrong tenant's model.  Fleet-enabled
        deployments serve a :class:`~repro.serve.fleet.FleetAPI`
        instead, which hosts real tenants; here every non-``None`` key
        maps to the typed ``"unknown-tenant"`` wire code.
        """
        if tenant is not None:
            raise TenantNotFound(
                f"this server hosts a single model, not tenant "
                f"{tenant!r}; deploy a fleet (serve --fleet-dir) for "
                "tenant-addressed requests",
                tenant=tenant,
            )

    @staticmethod
    def _resolve_deadline(request, deadline: float | None) -> float | None:
        """An absolute monotonic deadline for ``request``, if any.

        An explicit ``deadline`` (the frontend computes one the moment
        the frame is decoded) wins; otherwise a request carrying
        ``deadline_ms`` starts its budget now, at submission.
        """
        if deadline is not None:
            return deadline
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is None:
            return None
        return time.monotonic() + deadline_ms / 1e3

    def _finish_response(self, raw: Future, name, method, build) -> Future:
        """Chain a raw scheduler future into a typed-response future.

        ``build(result, version)`` constructs the response message; it
        runs in the flusher thread right after the flush that scored
        the rows, so ``flushed_version`` is exactly the version that
        answered — even when a hot-swap landed between submit and
        flush.
        """
        response: Future = Future()
        response.set_running_or_notify_cancel()

        def _finish(fut: Future):
            exc = fut.exception()
            if exc is not None:
                response.set_exception(exc)
                return
            result = fut.result()
            try:
                version = self._server.flushed_version(name, method)
                resp = build(result, version)
            except Exception as build_exc:  # noqa: BLE001 — forwarded
                response.set_exception(build_exc)
                return
            response.set_result(resp)

        raw.add_done_callback(_finish)
        return response

    def submit_score(
        self, request: ScoreRequest, *, deadline: float | None = None
    ) -> Future:
        """Answer one typed request; resolves to a :class:`ScoreResponse`.

        The response's ``version`` is the version that actually scored
        the flush, even if a hot-swap landed between submit and flush.
        The ``d_hv`` check runs against the version current at submit;
        in the (pathological) case of a promote *changing* ``d_hv``
        mid-flight, the flush fails loudly and every affected request
        gets a typed error rather than silently wrong shapes.

        ``deadline`` (absolute :func:`time.monotonic`; defaults to the
        request's own ``deadline_ms`` budget measured from now) drops
        the request unscored if it expires while queued.
        """
        self._check_tenant(request.tenant)
        name, method, raw = self._submit_queries(
            request.queries, request.model, request.want_scores,
            request.d_hv, self._resolve_deadline(request, deadline),
        )

        def build(result, version):
            if request.want_scores:
                scores = np.atleast_2d(np.asarray(result))
                return ScoreResponse(
                    predictions=np.argmax(scores, axis=1),
                    scores=scores,
                    model=name,
                    version=version,
                    request_id=request.request_id,
                )
            return ScoreResponse(
                predictions=np.atleast_1d(np.asarray(result)),
                model=name,
                version=version,
                request_id=request.request_id,
            )

        return self._finish_response(raw, name, method, build)

    def submit_score_batch(
        self, request: ScoreBatchRequest, *, deadline: float | None = None
    ) -> Future:
        """Answer one v2 batch frame; resolves to a
        :class:`ScoreBatchResponse`.

        This is the whole point of the batched wire: the N logical
        sub-requests stacked into ``request`` cost *one* scheduler
        submit (one future, one wakeup, one flush slot) instead of N —
        the response echoes ``counts`` so the client scatters the block
        back itself.  Every row is scored by one consistent registry
        version, exactly as for :meth:`submit_score` (including
        ``deadline`` semantics).
        """
        self._check_tenant(request.tenant)
        name, method, raw = self._submit_queries(
            request.queries, request.model, request.want_scores,
            request.d_hv, self._resolve_deadline(request, deadline),
        )

        def build(result, version):
            if request.want_scores:
                scores = np.atleast_2d(np.asarray(result))
                return ScoreBatchResponse(
                    predictions=np.argmax(scores, axis=1),
                    counts=request.counts,
                    scores=scores,
                    model=name,
                    version=version,
                    request_id=request.request_id,
                )
            return ScoreBatchResponse(
                predictions=np.atleast_1d(np.asarray(result)),
                counts=request.counts,
                model=name,
                version=version,
                request_id=request.request_id,
            )

        return self._finish_response(raw, name, method, build)

    def info(
        self,
        model: str | None = None,
        *,
        request_id: int = 0,
        tenant: str | None = None,
    ) -> ModelInfo:
        """A typed :class:`~repro.proto.ModelInfo` for a served model.

        ``tenant`` exists for dispatch symmetry with
        :class:`~repro.serve.fleet.FleetAPI`; on this single-model
        surface any non-``None`` key raises
        :class:`~repro.serve.TenantNotFound`.
        """
        self._check_tenant(tenant)
        name = self._server.resolve_name(model)
        record = self.registry.describe(name)
        engine = record.engine
        artifact = record.artifact
        if artifact is not None:
            n_live = artifact.n_live_dims
            quantizer = artifact.query_quantizer
            epsilon = artifact.epsilon
            mask_seed = artifact.mask_seed
        else:
            mask = engine.keep_mask
            n_live = engine.d_hv if mask is None else int(mask.sum())
            quantizer = (
                engine.quantizer.name if engine.quantizer is not None else None
            )
            epsilon = float("inf")
            mask_seed = None
        return ModelInfo(
            name=name,
            version=record.version,
            n_classes=engine.n_classes,
            d_hv=engine.d_hv,
            n_live_dims=n_live,
            backend=engine.backend.name,
            query_quantizer=quantizer,
            epsilon=epsilon,
            mask_seed=mask_seed,
            request_id=request_id,
        )

    # ------------------------------------------------------------------
    # ops endpoints (JSON-safe — the HTTP adapter returns these verbatim)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + registry summary for load balancers and probes."""
        registry = self.registry
        names = registry.names()
        return {
            "status": "ok" if names else "empty",
            "models": len(names),
            "default_model": self.default_model,
            "swaps": registry.swaps,
        }

    def models(self) -> dict:
        """Every served name with its versions and current pointer."""
        registry = self.registry
        out = {}
        for name in registry.names():
            current = registry.current_version(name)
            info = self.info(name)
            out[name] = {
                "current_version": current,
                "versions": list(registry.versions(name)),
                "evicted_versions": [
                    v
                    for v in registry.versions(name)
                    if registry.is_evicted(name, v)
                ],
                "n_classes": info.n_classes,
                "d_hv": info.d_hv,
                "n_live_dims": info.n_live_dims,
                "backend": info.backend,
                "query_quantizer": info.query_quantizer,
                "epsilon": None if np.isinf(info.epsilon) else info.epsilon,
            }
        return out

    def stats(self) -> dict:
        """Scheduler counters per entry point, JSON-safe."""
        out = {}
        for key, stats in self._server.stats().items():
            out[key] = {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "cancelled": stats.cancelled,
                "rejected": stats.rejected,
                "expired": stats.expired,
                "flushes": stats.flushes,
                "mean_batch_rows": stats.mean_batch_rows,
                "max_batch_rows": stats.max_batch_rows,
                "flushes_by_trigger": dict(stats.flushes_by_trigger),
            }
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the underlying server."""
        self._server.close()

    def __enter__(self) -> "ServingAPI":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingAPI(models={list(self.registry.names())}, "
            f"default={self.default_model!r})"
        )

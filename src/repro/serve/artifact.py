"""The versioned, self-describing on-disk model format.

Prive-HD's deployment unit is not a training run — it is the *served*
model: the (possibly privatized, pruned, quantized) class store plus
everything a host needs to answer queries exactly as the trainer would.
:class:`ModelArtifact` captures that unit as a directory of two files:

``manifest.json``
    Human-readable description: format version, store shape/dtype,
    quantizer names, preferred backend layout, the encoder *config*
    (codebooks regenerate deterministically from the seed — the config
    **is** the codebook), the privacy certificate (ε, δ, σ, sensitivity
    report) and SHA-256 checksums of every tensor.
``tensors.npz``
    The arrays: the serving class store (already quantized — quantile
    quantizers are not idempotent, so the store is quantized exactly
    once, at save time) and the pruning keep-mask when present.

``save``/``load`` round-trip bit-exactly, and :meth:`ModelArtifact.
engine` reconstructs a ready :class:`~repro.serve.InferenceEngine`
without touching any training code:

    >>> art = ModelArtifact.build(model, quantizer="bipolar",
    ...                           backend="packed", encoder=enc)
    >>> art.save("isolet-v1")
    >>> engine = ModelArtifact.load("isolet-v1").engine()
    >>> engine.predict(queries)          # identical to pre-save engine

The manifest makes artifacts safe to hand across trust boundaries: a
host can verify checksums and read the privacy certificate before
serving, and a newer reader always refuses an artifact from a future
format version.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backend import Backend, get_backend
from repro.hd.encoder import Encoder, encoder_from_config
from repro.hd.model import HDModel
from repro.hd.quantize import get_quantizer
from repro.serve.engine import InferenceEngine

__all__ = [
    "ModelArtifact",
    "ArtifactError",
    "load_artifact",
    "ARTIFACT_FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "TENSORS_FILENAME",
]

#: bump when the artifact layout changes incompatibly
ARTIFACT_FORMAT_VERSION = 2

MANIFEST_FILENAME = "manifest.json"
TENSORS_FILENAME = "tensors.npz"


class ArtifactError(ValueError):
    """A model artifact is missing, malformed, corrupt, or too new."""


def _checksum(arr: np.ndarray) -> str:
    """SHA-256 over the array's C-order bytes (dtype/shape checked apart)."""
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _mmap_npz(path: Path) -> dict[str, np.ndarray] | None:
    """Read-only memory maps of an *uncompressed* npz's arrays.

    An npz is a zip archive of ``.npy`` members; when the members are
    stored (not deflated — :meth:`ModelArtifact.save`'s default), every
    array's raw buffer sits at a fixed byte offset inside the file and
    can be mapped in place: each entry's local zip header gives the
    ``.npy`` start, the ``.npy`` header gives dtype/shape, and
    ``np.memmap(..., mode="r")`` does the rest.  Returns ``None``
    whenever the layout does not support mapping (compressed members,
    Fortran order, unknown npy versions) — callers fall back to a
    regular load, so this is an optimization, never a requirement.
    """
    import zipfile

    try:
        arrays: dict[str, np.ndarray] = {}
        with open(path, "rb") as f:
            with zipfile.ZipFile(f) as zf:
                infos = zf.infolist()
            if any(i.compress_type != zipfile.ZIP_STORED for i in infos):
                return None
            for info in infos:
                f.seek(info.header_offset)
                local = f.read(30)
                if len(local) < 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                f.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(f)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                arrays[name] = np.memmap(
                    path,
                    mode="r",
                    dtype=dtype,
                    shape=tuple(shape),
                    offset=f.tell(),
                )
        return arrays
    except (OSError, ValueError, zipfile.BadZipFile):
        return None


@dataclass(frozen=True)
class ModelArtifact:
    """A servable model snapshot: tensors + manifest, nothing else needed.

    Attributes
    ----------
    class_hvs:
        The serving class store, ``(n_classes, d_hv)``, already passed
        through ``store_quantizer`` (and masked, for pruned models).
    query_quantizer:
        Registry name of the quantizer raw-feature queries go through
        (``None`` = full precision) — the *training* quantizer, which may
        differ from the store's serving quantizer.
    store_quantizer:
        Registry name of the quantizer that produced ``class_hvs``
        (informational; the store is never re-quantized).
    backend:
        Preferred serving layout (``"dense"``/``"packed"``) recorded at
        build time; :meth:`engine` uses it unless overridden.
    keep_mask:
        Live-dimension mask of a pruned model, or ``None``.
    mask_seed:
        The deployment seed the keep-mask was drawn from
        (:func:`repro.hd.prune.mask_from_seed` /
        :class:`~repro.core.inference_privacy.ObfuscationConfig`
        ``mask_seed``), or ``None`` when the mask has no seed (e.g. an
        effectuality-pruned model) or there is no mask.  Recorded so
        the server can hand clients the mask *derivation* over the wire
        (protocol v2 :class:`~repro.proto.ModelInfo`) instead of a
        side channel; verified against ``keep_mask`` at build time.
    encoder_config:
        :meth:`~repro.hd.encoder.Encoder.config` dict, or ``None`` when
        the artifact serves pre-encoded queries only.
    privacy:
        The privacy certificate: ``epsilon``, ``delta``, ``sensitivity``,
        ``noise_std`` plus the sensitivity report's analytic/empirical
        ℓ2 values.  ``None`` marks a model with no DP claim at all;
        ``epsilon=inf`` marks an explicitly non-private release.
    metadata:
        Free-form JSON-safe extras (dataset name, training notes, …).
    """

    class_hvs: np.ndarray
    query_quantizer: str | None = None
    store_quantizer: str | None = None
    backend: str = "dense"
    keep_mask: np.ndarray | None = None
    mask_seed: int | None = None
    encoder_config: dict | None = None
    privacy: dict | None = None
    metadata: dict = field(default_factory=dict)
    format_version: int = ARTIFACT_FORMAT_VERSION

    def __post_init__(self):
        store = np.asarray(self.class_hvs)
        if store.ndim != 2:
            raise ArtifactError(
                f"class_hvs must be 2-D, got shape {store.shape}"
            )
        object.__setattr__(self, "class_hvs", store)
        if self.keep_mask is not None:
            keep = np.asarray(self.keep_mask, dtype=bool)
            if keep.shape != (store.shape[1],):
                raise ArtifactError(
                    f"keep_mask must have shape ({store.shape[1]},), "
                    f"got {keep.shape}"
                )
            object.__setattr__(self, "keep_mask", keep)
        if self.mask_seed is not None and self.keep_mask is None:
            raise ArtifactError(
                "mask_seed makes no sense without a keep_mask"
            )

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of classes in the stored class store."""
        return int(self.class_hvs.shape[0])

    @property
    def d_hv(self) -> int:
        """Hypervector dimensionality of the stored class store."""
        return int(self.class_hvs.shape[1])

    @property
    def n_live_dims(self) -> int:
        """Dimensions that survived pruning (= ``d_hv`` when unpruned)."""
        if self.keep_mask is None:
            return self.d_hv
        return int(self.keep_mask.sum())

    @property
    def epsilon(self) -> float:
        """The certified ε (``inf`` when no finite certificate)."""
        if not self.privacy:
            return float("inf")
        return float(self.privacy.get("epsilon", float("inf")))

    @property
    def is_private(self) -> bool:
        """Whether the artifact carries a finite (ε, δ) certificate."""
        return bool(np.isfinite(self.epsilon))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: HDModel,
        *,
        quantizer: str | None = None,
        store_quantizer: str | None = "same",
        backend: str | Backend = "dense",
        encoder: Encoder | None = None,
        keep_mask: np.ndarray | None = None,
        mask_seed: int | None = None,
        privacy: dict | None = None,
        metadata: dict | None = None,
    ) -> "ModelArtifact":
        """Snapshot a trained model into an artifact.

        ``quantizer`` is the raw-feature *query* quantizer;
        ``store_quantizer`` (default: same as ``quantizer``) is applied
        to the class store here, once — the artifact stores the
        quantized result, exactly what an
        ``InferenceEngine(model, quantizer=...)`` would have served.
        Pass ``store_quantizer=None`` to ship the store as trained
        (e.g. the full-precision noisy store of a DP release).

        ``mask_seed`` records the deployment seed a random §III-C
        ``keep_mask`` was drawn from; it is verified here to regenerate
        exactly ``keep_mask`` (via
        :func:`repro.hd.prune.mask_from_seed`), so the seed a v2
        :class:`~repro.proto.ModelInfo` later hands to clients is
        guaranteed to reproduce the served mask.
        """
        if encoder is not None and encoder.d_hv != model.d_hv:
            raise ArtifactError(
                f"encoder produces {encoder.d_hv}-dim hypervectors but "
                f"the model is {model.d_hv}-dim"
            )
        if store_quantizer == "same":
            store_quantizer = quantizer
        class_hvs = model.class_hvs
        if store_quantizer is not None:
            class_hvs = get_quantizer(store_quantizer)(class_hvs)
            store_name = get_quantizer(store_quantizer).name
        else:
            store_name = None
        if keep_mask is not None:
            # The served store of a pruned model is zero off-mask by
            # construction; re-zero defensively (quantizers map 0 → a
            # level, e.g. bipolar sends 0 to +1).
            keep = np.asarray(keep_mask, dtype=bool)
            class_hvs = class_hvs * keep
            if mask_seed is not None:
                from repro.hd.prune import mask_from_seed

                n_masked = int(keep.size - keep.sum())
                if not np.array_equal(
                    mask_from_seed(keep.size, n_masked, mask_seed), keep
                ):
                    raise ArtifactError(
                        f"mask_seed={mask_seed} does not regenerate the "
                        "given keep_mask; clients handed this seed would "
                        "mask the wrong dimensions"
                    )
        elif mask_seed is not None:
            raise ArtifactError("mask_seed makes no sense without a keep_mask")
        be = get_backend(backend)
        if not be.supports(class_hvs):
            raise ArtifactError(
                f"the {be.name!r} backend cannot represent the "
                f"{store_name!r}-quantized class store; pick a packable "
                "store quantizer or backend='dense'"
            )
        q_name = None if quantizer is None else get_quantizer(quantizer).name
        return cls(
            class_hvs=class_hvs,
            query_quantizer=q_name,
            store_quantizer=store_name,
            backend=be.name,
            keep_mask=keep_mask,
            mask_seed=mask_seed,
            encoder_config=None if encoder is None else encoder.config(),
            privacy=privacy,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        """The JSON manifest describing this artifact (checksums included)."""
        tensors = {
            "class_hvs": {
                "shape": list(self.class_hvs.shape),
                "dtype": str(self.class_hvs.dtype),
                "sha256": _checksum(self.class_hvs),
            }
        }
        if self.keep_mask is not None:
            tensors["keep_mask"] = {
                "shape": list(self.keep_mask.shape),
                "dtype": str(self.keep_mask.dtype),
                "sha256": _checksum(self.keep_mask),
            }
        return {
            "format": "prive-hd-model-artifact",
            "format_version": self.format_version,
            "n_classes": self.n_classes,
            "d_hv": self.d_hv,
            "n_live_dims": self.n_live_dims,
            "backend": self.backend,
            "query_quantizer": self.query_quantizer,
            "store_quantizer": self.store_quantizer,
            "mask_seed": self.mask_seed,
            "encoder": self.encoder_config,
            "privacy": self.privacy,
            "metadata": self.metadata,
            "tensors": tensors,
        }

    def save(self, path: str | Path, *, compress: bool = False) -> Path:
        """Write the artifact directory (``manifest.json`` + ``tensors.npz``).

        The tensors are written first and the manifest last, so a
        directory with a readable manifest always has its tensors in
        place.  By default the npz members are *stored* uncompressed so
        :meth:`load` with ``mmap=True`` can map the class store straight
        off disk (K serving workers then share one set of page-cache
        pages instead of K heap copies); ``compress=True`` trades that
        for a smaller file.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        arrays = {"class_hvs": self.class_hvs}
        if self.keep_mask is not None:
            arrays["keep_mask"] = self.keep_mask
        writer = np.savez_compressed if compress else np.savez
        writer(path / TENSORS_FILENAME, **arrays)
        (path / MANIFEST_FILENAME).write_text(
            json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        mmap: bool = False,
        verify: bool = True,
    ) -> "ModelArtifact":
        """Read an artifact directory back, verifying checksums.

        With ``mmap=True``, tensors saved uncompressed (the
        :meth:`save` default) come back as *read-only memory maps* of
        the npz file instead of heap copies: checksum verification
        still reads every byte once, but the pages are file-backed, so
        any number of processes serving the same artifact — a
        :class:`~repro.serve.WorkerPool` — share one physical copy
        through the page cache.  Compressed artifacts fall back to a
        regular in-memory load.

        ``verify=False`` skips the SHA-256 pass over the tensor bytes
        (shape/dtype are still checked against the manifest).  That is
        *only* sound when some other process already verified this
        exact directory — the :class:`~repro.serve.WorkerPool` parent
        hashes an artifact once and broadcasts ``verify=False`` to its
        K workers, turning K redundant full-store hash passes per
        hot-swap into one.  Anything crossing a trust boundary keeps
        the default.
        """
        path = Path(path)
        manifest_path = path / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise ArtifactError(
                f"{path} is not a model artifact (no {MANIFEST_FILENAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"unreadable manifest in {path}: {exc}") from exc
        version = int(manifest.get("format_version", 0))
        if version > ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact format v{version} is newer than supported "
                f"v{ARTIFACT_FORMAT_VERSION}"
            )
        declared = manifest.get("tensors", {})
        arrays = _mmap_npz(path / TENSORS_FILENAME) if mmap else None
        if arrays is not None:
            class_hvs = arrays["class_hvs"]
            keep_mask = arrays.get("keep_mask")
        else:
            with np.load(path / TENSORS_FILENAME) as data:
                class_hvs = data["class_hvs"]
                keep_mask = data["keep_mask"] if "keep_mask" in data else None
        for name, arr in (("class_hvs", class_hvs), ("keep_mask", keep_mask)):
            if arr is None:
                continue
            spec = declared.get(name)
            if spec is None:
                continue
            if list(arr.shape) != spec["shape"] or str(arr.dtype) != spec["dtype"]:
                raise ArtifactError(
                    f"tensor {name!r} does not match its manifest: "
                    f"{arr.shape}/{arr.dtype} vs "
                    f"{tuple(spec['shape'])}/{spec['dtype']}"
                )
            if verify and _checksum(arr) != spec["sha256"]:
                raise ArtifactError(
                    f"checksum mismatch on tensor {name!r} — the artifact "
                    "is corrupt or was modified after saving"
                )
        mask_seed = manifest.get("mask_seed")
        return cls(
            class_hvs=class_hvs,
            query_quantizer=manifest.get("query_quantizer"),
            store_quantizer=manifest.get("store_quantizer"),
            backend=manifest.get("backend", "dense"),
            keep_mask=keep_mask,
            mask_seed=None if mask_seed is None else int(mask_seed),
            encoder_config=manifest.get("encoder"),
            privacy=manifest.get("privacy"),
            metadata=manifest.get("metadata", {}),
            format_version=version,
        )

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def encoder(self) -> Encoder | None:
        """Rebuild the recorded encoder (codebooks bit-identical), if any."""
        if self.encoder_config is None:
            return None
        return encoder_from_config(self.encoder_config)

    def engine(
        self,
        *,
        backend: str | Backend | None = None,
        batch_size: int = 8192,
        with_encoder: bool = True,
        encode_workers: int | None = 1,
        chunk_size: int | None = None,
        encode_executor: str = "thread",
    ) -> InferenceEngine:
        """A ready :class:`~repro.serve.InferenceEngine` over this artifact.

        The store is served exactly as saved (never re-quantized);
        raw-feature queries stream through the recorded query quantizer,
        masked to the live dimensions for pruned models.  ``backend``
        overrides the recorded layout; predictions are identical either
        way on the same operands.
        """
        model = HDModel(self.n_classes, self.d_hv, self.class_hvs)
        return InferenceEngine(
            model,
            backend=self.backend if backend is None else backend,
            quantizer=self.query_quantizer,
            batch_size=batch_size,
            encoder=self.encoder() if with_encoder else None,
            encode_workers=encode_workers,
            chunk_size=chunk_size,
            encode_executor=encode_executor,
            store_is_quantized=True,
            keep_mask=self.keep_mask,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        eps = f"{self.epsilon:.3g}" if self.is_private else "non-private"
        return (
            f"ModelArtifact(n_classes={self.n_classes}, d_hv={self.d_hv}, "
            f"backend={self.backend!r}, "
            f"query_quantizer={self.query_quantizer!r}, privacy={eps})"
        )


def load_artifact(path: str | Path) -> ModelArtifact:
    """Load a :class:`ModelArtifact` directory (checksum-verified)."""
    return ModelArtifact.load(path)

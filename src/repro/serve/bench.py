"""Serving-throughput measurement shared by the CLI and the benchmarks.

The dense-vs-packed speedup is a headline claim of this refactor, so it
is *measured*, never asserted: :func:`run_throughput` builds the same
bipolar-quantized model, routes the same queries through each backend's
:class:`~repro.serve.InferenceEngine`, checks the predictions are
identical, and reports queries/second.  Both ``prive-hd throughput`` and
``benchmarks/bench_throughput.py`` are thin wrappers around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.hd.model import HDModel
from repro.serve.engine import InferenceEngine
from repro.utils.rng import spawn
from repro.utils.validation import check_positive_int

__all__ = [
    "ThroughputRow",
    "ThroughputResult",
    "make_serving_fixture",
    "run_throughput",
    "render_throughput_report",
]


@dataclass(frozen=True)
class ThroughputRow:
    """One backend's measurement (best wall-clock of the repeats)."""

    backend: str
    elapsed_s: float
    queries_per_s: float


@dataclass(frozen=True)
class ThroughputResult:
    """Dense/packed serving throughput on one synthetic workload.

    Attributes
    ----------
    rows:
        One row per measured backend.
    n_queries, d_hv, n_classes:
        Workload shape.
    speedup:
        Packed q/s over dense q/s; ``None`` unless both were measured.
    identical:
        Whether all measured backends produced bit-identical predictions.
    client_pack_s:
        One-time client-side cost of bit-packing the query batch (the
        §III-C offload scenario ships packed queries, so this happens on
        the edge device, off the serving path — and shrinks the uplink
        payload 16×).
    """

    rows: tuple[ThroughputRow, ...]
    n_queries: int
    d_hv: int
    n_classes: int
    speedup: float | None = None
    identical: bool = True
    client_pack_s: float = 0.0
    predictions: dict = field(default_factory=dict, repr=False)


def make_serving_fixture(
    d_hv: int = 10000,
    n_queries: int = 2000,
    n_classes: int = 26,
    seed: int = 0,
) -> tuple[HDModel, np.ndarray]:
    """A bipolar-quantized model plus bipolar query hypervectors.

    This is the §III-C serving shape: the hosted model and the
    obfuscated client queries are both 1-bit.  Values are ±1 floats so
    the dense backend runs its usual path untouched.
    """
    check_positive_int(d_hv, "d_hv")
    check_positive_int(n_queries, "n_queries")
    check_positive_int(n_classes, "n_classes")
    rng = spawn(seed, "serving-fixture")
    class_hvs = np.where(rng.normal(size=(n_classes, d_hv)) >= 0, 1.0, -1.0)
    # Queries correlate with a random class so predictions are non-trivial.
    owner = rng.integers(0, n_classes, n_queries)
    noise = rng.normal(size=(n_queries, d_hv))
    queries = np.where(class_hvs[owner] + 1.5 * noise >= 0, 1.0, -1.0)
    model = HDModel(n_classes, d_hv, class_hvs)
    return model, queries.astype(np.float32)


def run_throughput(
    backend: str = "both",
    *,
    d_hv: int = 10000,
    n_queries: int = 2000,
    n_classes: int = 26,
    batch_size: int = 8192,
    seed: int = 0,
    repeats: int = 3,
) -> ThroughputResult:
    """Measure host-side ``predict`` throughput per backend.

    ``backend`` is ``"dense"``, ``"packed"``, ``"native"``, ``"both"``
    (dense + packed) or ``"all"`` (those plus native).  The same query
    batch is served in each backend's wire format — floats for dense,
    bit planes for the packed-operand backends, exactly the §III-C
    offload split where the client quantizes/packs before transmitting.
    Native kernels are warmed (JIT-compiled) before timing.  The one-time
    client-side packing cost is measured separately
    (``client_pack_s``).  Each row is the best of ``repeats`` runs; when
    both backends run, predictions are compared element-wise.
    """
    from repro.backend import pack_hypervectors
    from repro.backend.native import kernels_available, warm_kernels

    if backend == "both":
        names: tuple[str, ...] = ("dense", "packed")
    elif backend == "all":
        names = ("dense", "packed", "native")
    else:
        names = (backend,)
    check_positive_int(repeats, "repeats")
    model, queries = make_serving_fixture(d_hv, n_queries, n_classes, seed)
    packed_queries, client_pack_s = None, 0.0
    if "packed" in names or "native" in names:
        t0 = time.perf_counter()
        packed_queries = pack_hypervectors(queries)
        client_pack_s = time.perf_counter() - t0
    if "native" in names and kernels_available():
        warm_kernels()  # JIT compilation must not count against the timings

    rows = []
    predictions: dict[str, np.ndarray] = {}
    for name in names:
        wire = queries if name == "dense" else packed_queries
        engine = InferenceEngine(model, backend=name, batch_size=batch_size)
        predictions[name] = engine.predict(wire)  # warm-up + correctness
        best = min(_time_once(engine.predict, wire) for _ in range(repeats))
        rows.append(
            ThroughputRow(
                backend=name,
                elapsed_s=best,
                queries_per_s=n_queries / best,
            )
        )

    speedup = None
    by_name = {r.backend: r for r in rows}
    if "dense" in by_name and "packed" in by_name:
        speedup = (
            by_name["packed"].queries_per_s / by_name["dense"].queries_per_s
        )
    identical = (
        len({p.tobytes() for p in predictions.values()}) == 1
    )
    return ThroughputResult(
        rows=tuple(rows),
        n_queries=n_queries,
        d_hv=d_hv,
        n_classes=n_classes,
        speedup=speedup,
        identical=identical,
        client_pack_s=client_pack_s,
        predictions=predictions,
    )


def _time_once(fn, arg) -> float:
    t0 = time.perf_counter()
    fn(arg)
    return time.perf_counter() - t0


def render_throughput_report(results: ThroughputResult) -> str:
    """The human-readable report both the CLI and the bench script print.

    One renderer so the two entry points cannot drift; callers must
    still treat ``results.identical == False`` as a failure (non-zero
    exit) themselves.
    """
    lines = [
        f"serving workload: {results.n_queries} queries, "
        f"d_hv={results.d_hv}, {results.n_classes} classes "
        "(bipolar store + queries)"
    ]
    for row in results.rows:
        lines.append(
            f"{row.backend:>6}: {row.queries_per_s:12,.0f} q/s   "
            f"({row.elapsed_s * 1e3:8.2f} ms / {results.n_queries} queries)"
        )
    if results.client_pack_s > 0:
        lines.append(
            f"one-time client-side packing: "
            f"{results.client_pack_s * 1e3:.2f} ms "
            "(16x smaller uplink payload)"
        )
    if results.speedup is not None:
        lines.append(
            f"packed speedup over dense: {results.speedup:.1f}x "
            f"(identical predictions: {results.identical})"
        )
    return "\n".join(lines)

"""The network front-end: an asyncio socket server over the ServingAPI.

This is the cloud side of the §III-C split made real: remote clients
connect over TCP, speak the versioned binary protocol of
:mod:`repro.proto`, and get micro-batched packed scoring with zero-drop
hot-swap — the exact execution path in-process callers get, because
every decoded request funnels into the same
:class:`~repro.serve.ServingAPI` /
:class:`~repro.serve.MicroBatchScheduler`.  Crucially, the frontend can
only *receive* what the protocol can express: encoded (quantized,
masked, bit-packed) query hypervectors.  Raw features and codebooks
have no frame type, so this process never sees them.

Connection discipline
---------------------
* Handshake first: the client's :class:`~repro.proto.Hello` is answered
  by :class:`~repro.proto.Welcome` carrying the negotiated protocol
  version; a client offering no common version gets a typed
  ``unsupported-version`` :class:`~repro.proto.ErrorReply` and a close.
* Requests on one connection are answered in order (responses echo the
  request's correlation id); per-connection throughput comes from
  batching rows into one :class:`~repro.proto.ScoreRequest`, aggregate
  throughput from many connections — concurrent connections coalesce
  into shared micro-batches, which is the whole point.
* Application errors (unknown model, wrong ``d_hv``) are typed replies
  on a *healthy* connection; framing violations (bad magic, oversize
  length, truncated or trailing bytes) poison the stream and close it
  after a best-effort ``bad-frame`` reply.

A thin HTTP/1.0 adapter (:class:`HttpOpsAdapter`, enabled with
``http_port``) exposes the ops endpoints — ``/healthz``, ``/models``,
``/stats``, and (fleet deployments) ``/tenants`` — as JSON for probes
and humans; it serves *metadata only* and cannot score.

    >>> api = ServingAPI.from_artifact("artifacts/isolet-v1")
    >>> with FrontendHandle(api, port=7411) as handle:   # background thread
    ...     print(handle.address)                        # ('127.0.0.1', 7411)

For a foreground server (the CLI's ``serve --listen``) use
:meth:`ServingFrontend.run`.
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
import threading
import time
from dataclasses import dataclass

from repro.proto.messages import (
    ErrorReply,
    ModelInfoRequest,
    ScoreBatchRequest,
    ScoreRequest,
    Welcome,
    decode_message,
)
from repro.proto.session import WireSession
from repro.proto.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    ProtocolError,
)
from repro.serve.api import ServingAPI
from repro.serve.errors import DeadlineExceeded, Overloaded, TenantNotFound
from repro.serve.faults import faults
from repro.serve.loops import new_event_loop

__all__ = ["FrontendConfig", "ServingFrontend", "FrontendHandle"]


@dataclass(frozen=True)
class FrontendConfig:
    """Connection-discipline knobs of a :class:`ServingFrontend`.

    Defaults reproduce the historical hard-coded behavior exactly; a
    deployment tightens them per its SLOs (``prive-hd serve`` exposes
    the timeouts as flags — see ``docs/operations.md`` for tuning
    guidance).

    Attributes
    ----------
    handshake_timeout_s:
        Seconds a fresh connection may sit without completing its
        :class:`~repro.proto.Hello` before the server closes it
        (``None`` = wait forever).  Bounds the sockets an idle port
        scanner can pin.
    idle_timeout_s:
        Seconds a negotiated connection may sit between request frames
        before the server closes it (``None`` = wait forever).
    http_timeout_s:
        Per-read timeout of the HTTP ops adapter (was a hard-coded
        ``5.0``).
    stop_grace_s:
        Seconds :meth:`ServingFrontend.stop` waits for live connection
        handlers to finish before cancelling them (was ``5.0``).
    start_timeout_s:
        Seconds :class:`FrontendHandle` waits for its background loop
        to bind the listeners (was ``30.0``).
    close_timeout_s:
        Seconds :class:`FrontendHandle.close` waits for the loop
        thread to stop and join (was ``10.0``).
    write_high_water_bytes:
        Per-connection transport write-buffer high-water mark.  The
        read loop ``drain()``\\ s after every dispatched frame, so once
        a slow-reading client's buffer crosses this mark the server
        *pauses reading* from that connection until it catches up —
        per-connection backpressure instead of unbounded server-side
        buffering.  ``None`` keeps asyncio's default (64 KiB).
    """

    handshake_timeout_s: float | None = None
    idle_timeout_s: float | None = None
    http_timeout_s: float = 5.0
    stop_grace_s: float = 5.0
    start_timeout_s: float = 30.0
    close_timeout_s: float = 10.0
    write_high_water_bytes: int | None = None

    def __post_init__(self):
        for name in (
            "handshake_timeout_s",
            "idle_timeout_s",
            "http_timeout_s",
            "stop_grace_s",
            "start_timeout_s",
            "close_timeout_s",
            "write_high_water_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")


class ServingFrontend:
    """Asyncio TCP server speaking the typed serving protocol.

    Parameters
    ----------
    api:
        The :class:`~repro.serve.ServingAPI` answering decoded requests
        (shared with any in-process callers — one registry, one
        micro-batcher).
    host, port:
        Bind address of the binary protocol listener; ``port=0`` picks
        a free port (read it from :attr:`address` after :meth:`start`).
    http_port:
        Optional second listener serving the JSON ops endpoints
        (``/healthz``, ``/models``, ``/stats``); ``None`` disables it,
        ``0`` picks a free port.
    max_frame_bytes:
        Per-frame payload cap forwarded to the decoder.
    max_inflight:
        Unanswered requests one connection may pipeline before the
        frontend stops reading from it — together with the transport's
        drain high-water mark, this bounds the memory a slow-reading
        (or never-reading) client can pin server-side.
    name:
        Server identification sent in the :class:`Welcome` frame.
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several frontends — the acceptor
        processes of a :class:`~repro.serve.WorkerPool` — can listen on
        one address and let the kernel balance connections across them.
    supported_versions:
        Protocol versions this server negotiates (default: everything
        this build speaks).  Pinning ``(1,)`` serves v2 clients in the
        v1 dialect — the downgrade path the cross-version tests
        exercise.
    config:
        :class:`FrontendConfig` with the connection-discipline knobs
        (handshake/idle timeouts, write high-water backpressure, stop
        grace); ``None`` uses the defaults, which reproduce the
        historical hard-coded behavior.
    loop:
        Event-loop flavor for :meth:`run` (and
        :class:`FrontendHandle`'s background thread): ``"asyncio"`` or
        ``"uvloop"``.  Requesting uvloop on a host without it falls
        back to asyncio with one INFO log — see
        :mod:`repro.serve.loops`.
    """

    def __init__(
        self,
        api: ServingAPI,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: int = 64,
        name: str = "prive-hd",
        reuse_port: bool = False,
        supported_versions: tuple[int, ...] | None = None,
        config: FrontendConfig | None = None,
        loop: str = "asyncio",
    ):
        self.api = api
        self.config = config if config is not None else FrontendConfig()
        self.host = host
        self.port = port
        self.http_port = http_port
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight = max_inflight
        self.name = name
        self.reuse_port = reuse_port
        self.loop = loop
        self.supported_versions = (
            tuple(SUPPORTED_VERSIONS)
            if supported_versions is None
            else tuple(sorted(int(v) for v in supported_versions))
        )
        self.connections_served = 0
        self.frames_rejected = 0
        self._server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind both listeners; returns the protocol ``(host, port)``."""
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the binary protocol listener."""
        if self._server is None:
            raise RuntimeError("frontend is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def http_address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` of the HTTP ops listener, if enabled."""
        if self._http_server is None:
            return None
        return self._http_server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Stop accepting connections and close the listeners.

        Live connections are closed at the transport (their handlers
        exit on the resulting EOF); stragglers are cancelled after a
        short grace period.  The transport makes no drain promise
        beyond what the micro-batcher already flushed.
        """
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self.config.stop_grace_s
            )
            for task in pending:  # pragma: no cover - defensive
                task.cancel()

    async def serve_forever(self) -> None:
        """Run until cancelled (listeners must be started)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    def run(self) -> None:
        """Blocking convenience: start and serve until interrupted.

        Runs on the loop flavor this frontend was constructed with
        (``loop="uvloop"`` where available, stdlib asyncio otherwise).
        """

        async def _main():
            await self.start()
            host, port = self.address
            print(f"listening on {host}:{port}", flush=True)
            if self.http_address is not None:
                h, p = self.http_address
                print(f"http ops on {h}:{p}", flush=True)
            await self._server.serve_forever()

        event_loop = new_event_loop(self.loop)
        try:
            asyncio.set_event_loop(event_loop)
            event_loop.run_until_complete(_main())
        except KeyboardInterrupt:
            pass
        finally:
            asyncio.set_event_loop(None)
            event_loop.close()

    # ------------------------------------------------------------------
    # binary protocol
    # ------------------------------------------------------------------
    async def _read_frame(
        self,
        reader: asyncio.StreamReader,
        session: WireSession,
        *,
        timeout: float | None = None,
    ) -> Frame | None:
        """One frame off the stream; ``None`` on clean EOF between frames.

        One chunked ``read`` feeds the session's zero-copy decoder and
        usually completes several pipelined frames at once — replacing
        the two ``readexactly`` awaits the old loop paid per frame;
        queued frames drain without touching the socket.

        ``timeout`` bounds the wait for the *start* of the next frame —
        the idle gap between requests (or before the handshake).  A
        peer that goes silent past it gets the connection closed; a
        peer mid-frame is actively sending and is not timed.
        """
        while True:
            frame = session.next_frame()
            if frame is not None:
                return frame
            read = reader.read(65536)
            if timeout is not None and session.pending_bytes == 0:
                read = asyncio.wait_for(read, timeout=timeout)
            chunk = await read
            if not chunk:
                session.receive_eof()  # raises mid-header/mid-payload
                return None  # clean close between frames
            session.receive_data(chunk)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        session: WireSession,
        message,
        *,
        version: int | None = None,
    ) -> None:
        data = session.render_frame(message, version=version)
        async with lock:  # pipelined responses must not interleave
            writer.write(data)
            await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
            me.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Small request/response frames: defeat Nagle on our side of
            # the connection too (the client sets it on its own).
            sock.setsockopt(
                socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
            )
        if self.config.write_high_water_bytes is not None:
            # Lower the transport's pause threshold so the drain() in
            # the read loop below pauses reads from a slow-reading
            # client sooner — per-connection backpressure.
            writer.transport.set_write_buffer_limits(
                high=self.config.write_high_water_bytes
            )
        write_lock = asyncio.Lock()
        inflight = asyncio.Semaphore(self.max_inflight)
        session = WireSession(
            "server",
            max_frame_bytes=self.max_frame_bytes,
            supported_versions=self.supported_versions,
        )
        try:
            while True:
                timeout = (
                    self.config.handshake_timeout_s
                    if session.negotiated is None
                    else self.config.idle_timeout_s
                )
                frame = await self._read_frame(
                    reader, session, timeout=timeout
                )
                if frame is None:
                    break
                action = faults.fire("frontend.read")
                if action is not None:
                    if action.action == "drop":
                        continue
                    await asyncio.sleep(action.delay_s)
                if session.negotiated is None:
                    ok = await self._handshake(
                        frame, writer, write_lock, session
                    )
                    if not ok:
                        break
                    continue
                # Requests pipeline: a ScoreRequest is submitted to the
                # micro-batcher without blocking the read loop, and its
                # response is written by a completion callback when the
                # flush lands (correlation ids let clients match reorder
                # -ed replies).  Many connections — and many in-flight
                # requests per connection — coalesce into shared
                # batches.  The semaphore caps this connection's
                # unanswered requests and drain() honors the
                # transport's high-water mark, so a client that floods
                # requests or never reads replies throttles itself
                # instead of growing server memory.
                await inflight.acquire()
                self._dispatch(
                    frame, writer, session, session.negotiated,
                    inflight.release,
                )
                # Give completion callbacks a turn before the next read:
                # a queued frame returns without suspending, so a
                # flooding client must not starve the response path.
                await asyncio.sleep(0)
                await writer.drain()
        except ProtocolError as exc:
            # Framing/version violations (including a non-Hello opener
            # and post-negotiation version skew, screened by the
            # session) poison the stream: best-effort typed reply, then
            # close.
            self.frames_rejected += 1
            try:
                await self._send(
                    writer,
                    write_lock,
                    session,
                    ErrorReply(code="bad-frame", message=str(exc)),
                )
            except (ConnectionError, RuntimeError):
                pass
        except asyncio.TimeoutError:
            pass  # idle/handshake timeout: close without ceremony
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handshake(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        session: WireSession,
    ) -> bool:
        """Negotiate a protocol version; ``False`` closes the connection.

        The session already screened the frame type (a non-Hello opener
        raised before this point), so the frame *is* a Hello; what can
        still fail here is a malformed Hello payload (raises, handled
        as a framing error upstream) or a disjoint version offer (typed
        ``unsupported-version`` reply).
        """
        hello = decode_message(frame)
        version = session.accept_hello(hello.versions)
        if version is None:
            await self._send(
                writer,
                lock,
                session,
                ErrorReply(
                    code="unsupported-version",
                    message=(
                        f"client speaks {list(hello.versions)}, server "
                        f"speaks {list(self.supported_versions)}"
                    ),
                ),
            )
            return False
        await self._send(
            writer,
            lock,
            session,
            Welcome(
                version=version,
                server=self.name,
                models=self.api.registry.names(),
            ),
        )
        return True

    def _dispatch(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        session: WireSession,
        version: int,
        done,
    ) -> None:
        """Route one post-handshake frame (runs on the event loop).

        Metadata requests are answered immediately; scoring requests
        are submitted to the micro-batcher without blocking the read
        loop — the scheduler future's completion callback hops back to
        the loop (``call_soon_threadsafe``, one hop, no intermediate
        task) and writes the response.  Application errors become typed
        replies on a healthy connection.  ``done`` is invoked exactly
        once, after this frame's response is written (the in-flight
        semaphore release).
        """
        request_id = 0
        try:
            message = decode_message(frame)
            if isinstance(message, (ScoreRequest, ScoreBatchRequest)):
                # One frame -> one scheduler submit, for both shapes: a
                # ScoreBatchRequest amortizes this dispatch (and the
                # completion wakeup below) over its N stacked
                # sub-requests, which is what closes the gap between
                # the socket path and the in-process server.
                request_id = message.request_id
                loop = asyncio.get_running_loop()
                if isinstance(message, ScoreBatchRequest):
                    future = self.api.submit_score_batch(message)
                else:
                    future = self.api.submit_score(message)
                def bridge(f, _rid=request_id):
                    # A batch can complete after the frontend's loop is
                    # gone (e.g. a stalled flush draining past
                    # shutdown); there is no one left to reply to.
                    try:
                        loop.call_soon_threadsafe(
                            self._write_completion,
                            writer,
                            session,
                            f,
                            version,
                            _rid,
                            done,
                        )
                    except RuntimeError:
                        pass

                future.add_done_callback(bridge)
                return
            if isinstance(message, ModelInfoRequest):
                request_id = message.request_id
                response = self.api.info(
                    message.model,
                    request_id=message.request_id,
                    tenant=message.tenant,
                )
            else:
                response = ErrorReply(
                    code="bad-frame",
                    message=(
                        f"unexpected {type(message).__name__} frame from "
                        "a client"
                    ),
                )
        except ProtocolError as exc:
            self.frames_rejected += 1
            response = ErrorReply(
                code="bad-frame", message=str(exc), request_id=request_id
            )
        except Exception as exc:  # noqa: BLE001 — the server must survive
            response = self._error_reply(exc, request_id)
        try:
            self._write_message(writer, session, response, version)
        finally:
            done()

    def _write_completion(
        self,
        writer: asyncio.StreamWriter,
        session: WireSession,
        future,
        version: int,
        request_id: int,
        done=None,
    ) -> None:
        """Write a finished scoring future's response (on the loop)."""
        try:
            exc = future.exception()
            if exc is None:
                message = future.result()
            else:
                message = self._error_reply(exc, request_id)
            self._write_message(writer, session, message, version)
        finally:
            if done is not None:
                done()

    def _write_message(
        self,
        writer: asyncio.StreamWriter,
        session: WireSession,
        message,
        version: int,
    ) -> None:
        """Encode + write one frame, synchronously on the loop.

        ``write`` enqueues the whole frame atomically (the transport
        handles flow control in the background), so concurrent
        completions for one connection cannot interleave bytes.  This
        is also the single interception point for reply-side fault
        injection (``frontend.reply``): drops skip the write, delays
        reschedule it via ``call_later`` — the loop never blocks.
        """
        action = faults.fire("frontend.reply")
        if action is not None:
            if action.action == "drop":
                return
            # delay/stall: defer the write without blocking the loop.
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:  # pragma: no cover - defensive
                loop = None
            if loop is not None:
                loop.call_later(
                    action.delay_s,
                    self._write_now,
                    writer,
                    session,
                    message,
                    version,
                )
                return
        self._write_now(writer, session, message, version)

    def _write_now(
        self,
        writer: asyncio.StreamWriter,
        session: WireSession,
        message,
        version: int,
    ) -> None:
        if writer.is_closing():
            return
        try:
            # render_frame stages scalars in the session's reusable
            # per-connection scratch (no builder allocation per
            # completion) and hands the transport one immutable bytes
            # object — safe for asyncio and uvloop alike, which may
            # retain write buffers past this call.
            writer.write(session.render_frame(message, version=version))
        except (ConnectionError, RuntimeError):
            pass

    @staticmethod
    def _error_reply(exc: BaseException, request_id: int) -> ErrorReply:
        """Map an application exception to its typed wire error."""
        if isinstance(exc, Overloaded):
            return ErrorReply.overloaded(
                str(exc),
                retry_after_ms=exc.retry_after_ms,
                request_id=request_id,
            )
        if isinstance(exc, DeadlineExceeded):
            return ErrorReply(
                code="deadline-exceeded",
                message=str(exc),
                request_id=request_id,
            )
        if isinstance(exc, ProtocolError):
            return ErrorReply(
                code="bad-frame", message=str(exc), request_id=request_id
            )
        if isinstance(exc, TenantNotFound):
            # Before the KeyError arm: a missing *tenant* is not a
            # missing model, and unlike "overloaded" it is not
            # retryable — the tenant will not appear by waiting.
            return ErrorReply(
                code="unknown-tenant",
                message=str(exc),
                request_id=request_id,
            )
        if isinstance(exc, KeyError):
            return ErrorReply(
                code="unknown-model",
                message=str(exc).strip("'\""),
                request_id=request_id,
            )
        if isinstance(exc, ValueError):
            return ErrorReply(
                code="bad-request", message=str(exc), request_id=request_id
            )
        return ErrorReply(
            code="internal",
            message=f"{type(exc).__name__}: {exc}",
            request_id=request_id,
        )

    # ------------------------------------------------------------------
    # HTTP ops adapter
    # ------------------------------------------------------------------
    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0, JSON out, connection-per-request.

        Metadata only — there is deliberately no scoring route, so an
        ops port exposed wider than the binary port cannot be used to
        query the model.
        """
        http_timeout = self.config.http_timeout_s
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=http_timeout
            )
            while True:  # drain headers; we route on the request line only
                line = await asyncio.wait_for(
                    reader.readline(), timeout=http_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0].upper() if parts else ""
            path = parts[1].split("?")[0] if len(parts) > 1 else ""
            if method != "GET":
                status, body = 405, {"error": "method not allowed"}
            elif path in ("/healthz", "/health"):
                status, body = 200, self.api.health()
            elif path == "/models":
                status, body = 200, self.api.models()
            elif path == "/stats":
                status, body = 200, self.api.stats()
            elif path == "/tenants":
                # Fleet deployments only; a single-model API has no
                # tenant listing to leak, so the route 404s there.
                summary = getattr(self.api, "tenants_summary", None)
                if summary is None:
                    status, body = 404, {"error": "not a fleet server"}
                else:
                    status, body = 200, summary()
            else:
                status, body = 404, {"error": f"no route {path!r}"}
            payload = json.dumps(body, indent=2, sort_keys=True).encode()
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}
            writer.write(
                (
                    f"HTTP/1.0 {status} {reason.get(status, 'Error')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, UnicodeDecodeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = self._server is not None and self._server.is_serving()
        return (
            f"ServingFrontend(api={self.api!r}, "
            f"bound={self.address if bound else None})"
        )


class FrontendHandle:
    """A frontend running on a background event-loop thread.

    What tests, benchmarks, and notebooks want: start a real TCP
    listener without owning an event loop, get the bound address
    synchronously, and tear it down deterministically.

        with FrontendHandle(api) as handle:
            client = PriveHDClient(*handle.address, ...)

    The handle owns only the listeners — closing it does not close the
    :class:`~repro.serve.ServingAPI`.
    """

    def __init__(self, api: ServingAPI, **frontend_kwargs):
        self.frontend = ServingFrontend(api, **frontend_kwargs)
        start_timeout = self.frontend.config.start_timeout_s
        self._loop = new_event_loop(self.frontend.loop)
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serving-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=start_timeout)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError(
                f"frontend failed to start within {start_timeout:g}s"
            )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def _start():
            try:
                await self.frontend.start()
            except BaseException as exc:  # noqa: BLE001 — surfaced to ctor
                self._startup_error = exc
            finally:
                self._started.set()

        self._loop.run_until_complete(_start())
        if self._startup_error is None:
            self._loop.run_forever()
        self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the binary listener."""
        return self.frontend.address

    @property
    def http_address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` of the HTTP ops listener, if enabled."""
        return self.frontend.http_address

    def close(self) -> None:
        """Stop the listeners and join the loop thread."""
        if not self._thread.is_alive():
            return
        stopped = threading.Event()

        async def _stop():
            await self.frontend.stop()
            stopped.set()
            self._loop.stop()

        close_timeout = self.frontend.config.close_timeout_s
        asyncio.run_coroutine_threadsafe(_stop(), self._loop)
        stopped.wait(timeout=close_timeout)
        self._thread.join(timeout=close_timeout)

    def __enter__(self) -> "FrontendHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Argument validation helpers.

Small, explicit checkers used at every public API boundary.  They raise
``ValueError``/``TypeError`` with messages that name the offending argument
so failures surface at the call site rather than deep inside NumPy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_1d",
    "check_2d",
    "check_in_range",
    "check_labels",
    "check_positive_int",
    "check_probability",
]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def check_1d(array: np.ndarray, name: str, *, length: int | None = None) -> np.ndarray:
    """Validate a 1-D array, optionally of exact ``length``."""
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if length is not None and array.shape[0] != length:
        raise ValueError(
            f"{name} must have length {length}, got {array.shape[0]}"
        )
    return array


def check_2d(
    array: np.ndarray,
    name: str,
    *,
    n_cols: int | None = None,
) -> np.ndarray:
    """Validate a 2-D array, optionally with exactly ``n_cols`` columns.

    1-D input is promoted to a single-row 2-D array, mirroring the
    scikit-learn convention for single-sample calls.
    """
    array = np.asarray(array)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    if n_cols is not None and array.shape[1] != n_cols:
        raise ValueError(
            f"{name} must have {n_cols} columns, got {array.shape[1]}"
        )
    return array


def check_labels(labels: Sequence[int], name: str, *, n_classes: int | None = None) -> np.ndarray:
    """Validate an integer label vector in ``[0, n_classes)``."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == arr.astype(np.int64)):
            raise ValueError(f"{name} must contain integers")
        arr = arr.astype(np.int64)
    arr = arr.astype(np.int64, copy=False)
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} must be non-negative, min is {arr.min()}")
    if n_classes is not None and arr.size and arr.max() >= n_classes:
        raise ValueError(
            f"{name} must be < {n_classes}, max is {arr.max()}"
        )
    return arr

"""Shared utilities: deterministic RNG streams, validation, result tables.

Every stochastic component in the library draws its randomness from a
:class:`numpy.random.Generator` produced by :func:`repro.utils.rng.spawn`,
so that any experiment is reproducible from a single integer seed.
"""

from repro.utils.rng import spawn, derive_seed, ensure_generator
from repro.utils.tables import ResultTable, format_float
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_labels,
    check_positive_int,
    check_probability,
)

__all__ = [
    "spawn",
    "derive_seed",
    "ensure_generator",
    "ResultTable",
    "format_float",
    "check_1d",
    "check_2d",
    "check_in_range",
    "check_labels",
    "check_positive_int",
    "check_probability",
]

"""Plain-text result tables for the benchmark harness.

The paper reports its evaluation as figures (series of points) and one
table.  The benchmark layer renders both with :class:`ResultTable`, which
produces aligned, pipe-separated text that reads like the paper's rows —
no plotting dependency required.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["ResultTable", "format_float"]


def format_float(value: Any, digits: int = 3) -> str:
    """Format a number compactly: fixed-point when sane, scientific otherwise.

    >>> format_float(0.8512)
    '0.851'
    >>> format_float(2500000)
    '2.50e+06'
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:.2e}" if abs(value) >= 10**6 else str(value)
    try:
        v = float(value)
    except (TypeError, ValueError):
        return str(value)
    if v != v:  # NaN
        return "nan"
    if v == 0:
        return "0"
    if abs(v) >= 10**6 or abs(v) < 10 ** (-digits):
        return f"{v:.2e}"
    return f"{v:.{digits}f}"


class ResultTable:
    """An aligned text table with a title, headers and typed rows.

    Examples
    --------
    >>> t = ResultTable("demo", ["name", "acc"])
    >>> t.add_row(["isolet", 0.931])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    == demo ==
    name   | acc
    -------+------
    isolet | 0.931
    """

    def __init__(self, title: str, headers: Sequence[str]):
        if not headers:
            raise ValueError("headers must be non-empty")
        self.title = title
        self.headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any], digits: int = 3) -> None:
        """Append one row; numbers are formatted with :func:`format_float`."""
        row = [format_float(v, digits) if not isinstance(v, str) else v for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table as aligned pipe-separated text."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (used by the benchmark harness)."""
        print("\n" + self.render())

"""Deterministic random-stream management.

Hyperdimensional computing is built on *fixed* random projections: the base
and level hypervectors must be identical between training, inference,
attack, and hardware-simulation code paths, while noise used by the
differential-privacy mechanism must be independent of them.  We therefore
derive independent, named sub-streams from one root seed instead of passing
a single mutable generator around.

The scheme is a thin wrapper over :class:`numpy.random.SeedSequence`:
``spawn(seed, "isolet", "base-hv")`` always yields the same generator, and
generators spawned under different names are statistically independent.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

RngLike = Union[int, None, np.random.Generator]

__all__ = ["spawn", "derive_seed", "ensure_generator"]


def _key_to_int(key: str) -> int:
    """Map a stream name to a stable 32-bit integer.

    ``zlib.crc32`` is used (rather than ``hash``) because it is stable
    across interpreter runs and platforms, which is what makes experiment
    results byte-for-byte reproducible.
    """
    return zlib.crc32(key.encode("utf-8"))


def derive_seed(seed: int, *streams: str) -> int:
    """Derive a child seed from ``seed`` and a path of stream names.

    Parameters
    ----------
    seed:
        Root experiment seed.
    streams:
        Ordered stream names, e.g. ``("isolet", "base-hv")``.  Different
        paths give independent child seeds.

    Returns
    -------
    int
        A 63-bit seed suitable for :class:`numpy.random.default_rng`.
    """
    entropy = [int(seed)] + [_key_to_int(s) for s in streams]
    ss = np.random.SeedSequence(entropy)
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


def spawn(seed: int, *streams: str) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for a stream.

    Examples
    --------
    >>> g1 = spawn(7, "base-hv")
    >>> g2 = spawn(7, "base-hv")
    >>> bool((g1.integers(0, 100, 5) == g2.integers(0, 100, 5)).all())
    True
    """
    return np.random.default_rng(derive_seed(seed, *streams))


def ensure_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``rng`` (seed, ``None`` or generator) into a generator.

    Accepting all three forms at public API boundaries keeps call sites
    short, while the internals always work with a concrete generator.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)

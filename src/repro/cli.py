"""``prive-hd`` command-line interface.

Runs any of the paper's experiments from a shell and prints the
paper-style tables:

    prive-hd list                 # what can I run?
    prive-hd fig5                 # regenerate Fig. 5 (reduced scale)
    prive-hd table1               # Table I platform comparison
    prive-hd all                  # everything (minutes)

Every experiment accepts ``--seed``; the heavier ones accept ``--dhv``
to trade fidelity for speed (paper scale is ``--dhv 10000``).

Beyond the paper artifacts, workload commands exercise the serving
stack and the model lifecycle end-to-end:

    prive-hd train isolet --batch-size 512 --backend packed \
        --save artifacts/isolet            # train -> on-disk artifact
    prive-hd eval artifacts/isolet        # load -> accuracy
    prive-hd serve artifacts/isolet --clients 8   # micro-batched serving
    prive-hd serve artifacts/isolet --listen 127.0.0.1:7411 \
        --http-port 7412                  # network frontend (binary + ops)
    prive-hd client artifacts/isolet --connect 127.0.0.1:7411 \
        # encode+obfuscate locally, ship bit planes, verify vs offline
    prive-hd throughput --dhv 10000 --backend both

Every command returns a non-zero exit code on failure (2 for bad
arguments, 1 for runtime errors) instead of a bare traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro.experiments import (
    fig2_reconstruction,
    fig3_information,
    fig4_retraining,
    fig5_quantization,
    fig6_obfuscation,
    fig8_dp_training,
    fig9_inference_privacy,
    hw_approx,
    table1_platforms,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_fig2(args) -> None:
    result = fig2_reconstruction.run(d_hv=args.dhv, seed=args.seed)
    result.to_table().print()


def _run_fig3(args) -> None:
    result = fig3_information.run(d_hv=args.dhv, seed=args.seed)
    for table in result.to_tables():
        table.print()
    print(f"\nrank of classes A/B retained: {result.rank_retained}")


def _run_fig4(args) -> None:
    result = fig4_retraining.run(
        d_hv_base=args.dhv,
        configs=(
            fig4_retraining.Fig4Config(args.dhv, 100),
            fig4_retraining.Fig4Config(1000, 50),
            fig4_retraining.Fig4Config(1000, 100),
            fig4_retraining.Fig4Config(500, 50),
            fig4_retraining.Fig4Config(500, 100),
        ),
        seed=args.seed,
    )
    result.to_table().print()


def _run_fig5(args) -> None:
    dims = tuple(
        sorted({max(256, args.dhv // 4), args.dhv // 2, args.dhv})
    )
    result = fig5_quantization.run(
        dims_list=dims, d_hv=args.dhv, seed=args.seed
    )
    for table in result.to_tables():
        table.print()
    print(f"\nfull-precision baseline: {result.full_precision_accuracy:.3f}")


def _run_fig6(args) -> None:
    result = fig6_obfuscation.run(d_hv=args.dhv, seed=args.seed)
    result.to_table().print()
    result.psnr_table().print()


def _run_fig8(args) -> None:
    for name in ("isolet", "face", "mnist"):
        dims = tuple(
            sorted({max(256, args.dhv // 8), args.dhv // 4, args.dhv // 2, args.dhv})
        )
        result = fig8_dp_training.run_dims_sweep(
            dataset=name, dims_list=dims, d_hv=args.dhv, seed=args.seed
        )
        result.to_table().print()
    fig8_dp_training.run_datasize_sweep(
        d_hv=args.dhv, seed=args.seed
    ).to_table().print()


def _run_fig9(args) -> None:
    masked = tuple(
        sorted({0, args.dhv // 4, args.dhv // 2, 3 * args.dhv // 4})
    )
    result = fig9_inference_privacy.run(
        masked_list=masked, d_hv=args.dhv, seed=args.seed
    )
    for table in result.to_tables():
        table.print()


def _run_table1(args) -> None:
    result = table1_platforms.run()
    result.to_table().print()
    result.factors_table().print()


def _run_hw(args) -> None:
    result = hw_approx.run(seed=args.seed)
    result.to_table().print()
    print(
        f"\nLUT savings: bipolar {result.lut_saving_bipolar:.1%}, "
        f"ternary {result.lut_saving_ternary:.1%}"
    )


# ----------------------------------------------------------------------
# workload commands (serving stack, not paper artifacts)
# ----------------------------------------------------------------------
def _run_train(args) -> int:
    import numpy as np

    from repro.data import load_dataset
    from repro.hd import get_quantizer
    from repro.hd.batching import fit_classes_batched
    from repro.serve import InferenceEngine

    # Reject impossible flag combinations before any work is done.
    quantizer = get_quantizer(args.quantizer)
    if args.backend in ("packed", "native") and not quantizer.packable:
        print(
            f"error: --backend {args.backend} requires a packable quantizer "
            f"(bipolar/ternary/ternary-biased), not {args.quantizer!r}",
            file=sys.stderr,
        )
        return 2

    chunk_size = args.batch_size if args.chunk_size is None else args.chunk_size
    data = load_dataset(args.dataset, seed=args.seed)
    lo, hi = data.feature_range
    encoder = _build_encoder(
        args.encoder, data.d_in, args.dhv, lo=lo, hi=hi, seed=args.seed
    )
    t0 = time.perf_counter()
    model = fit_classes_batched(
        encoder,
        data.X_train,
        data.y_train,
        data.n_classes,
        quantizer=args.quantizer,
        batch_size=chunk_size,
        workers=args.encode_workers,
        executor=args.encode_executor,
    )
    train_s = time.perf_counter() - t0

    # Serve the SAME model whichever backend is chosen, so --backend only
    # changes the compute path, never the answers: a packable quantizer
    # is applied to the class store for both backends; unpackable ones
    # (identity/2bit) serve the raw full-precision store (dense only,
    # enforced above).
    serve_quantizer = args.quantizer if quantizer.packable else None
    engine = InferenceEngine(
        model,
        backend=args.backend,
        quantizer=serve_quantizer,
        batch_size=args.batch_size,
    )

    # Evaluation streams through a fused encode -> quantize (-> pack)
    # pipeline — the whole point of --chunk-size is that the (n, d_hv)
    # encoding matrix never materializes at once.  Test queries get the
    # *training* quantizer (even unpackable ones like 2bit), so encoded
    # queries always match the representation the model was bundled from.
    from repro.hd import EncodePipeline

    pipeline = EncodePipeline(
        encoder,
        chunk_size=chunk_size,
        workers=args.encode_workers,
        executor=args.encode_executor,
    )
    t0 = time.perf_counter()
    preds = np.concatenate(
        [
            engine.predict(H)
            for _, H in pipeline.stream_quantized(
                data.X_test, quantizer, pack=args.backend in ("packed", "native")
            )
        ]
    )
    infer_s = time.perf_counter() - t0
    acc = float(np.mean(preds == data.y_test))
    print(
        f"dataset={data.name} d_in={data.d_in} n_classes={data.n_classes} "
        f"d_hv={args.dhv} encoder={args.encoder} quantizer={args.quantizer}"
    )
    print(
        f"trained {len(data.y_train)} rows in {train_s:.2f}s "
        f"(batch_size={args.batch_size}, chunk_size={chunk_size}, "
        f"encode_workers={args.encode_workers})"
    )
    print(
        f"backend={args.backend}: test accuracy {acc:.3f} "
        f"({len(data.y_test)} queries in {infer_s * 1e3:.1f} ms, "
        f"{len(data.y_test) / max(infer_s, 1e-9):,.0f} q/s)"
    )

    if args.save is not None:
        from repro.serve import ModelArtifact

        artifact = ModelArtifact.build(
            model,
            quantizer=args.quantizer,
            store_quantizer=serve_quantizer,
            backend=args.backend,
            encoder=encoder,
            metadata={
                "dataset": data.name,
                "dataset_seed": args.seed,
                "encoder": args.encoder,
                "test_accuracy": round(acc, 4),
                "n_train": int(len(data.y_train)),
            },
        )
        path = artifact.save(args.save)
        print(
            f"saved artifact to {path} "
            f"(backend={artifact.backend}, "
            f"query_quantizer={artifact.query_quantizer}, "
            f"store={artifact.class_hvs.nbytes:,} bytes)"
        )
    return 0


def _build_encoder(kind: str, d_in: int, d_hv: int, *, lo: float, hi: float, seed: int):
    from repro.hd import LevelBaseEncoder, ScalarBaseEncoder

    if kind == "level-base":
        return LevelBaseEncoder(d_in, d_hv, lo=lo, hi=hi, seed=seed)
    return ScalarBaseEncoder(d_in, d_hv, lo=lo, hi=hi, seed=seed)


def _load_artifact_for_dataset(args):
    """Shared ``eval``/``serve`` plumbing: artifact + its evaluation data."""
    from repro.data import load_dataset
    from repro.serve import load_artifact

    artifact = load_artifact(args.artifact)
    dataset = args.dataset or artifact.metadata.get("dataset")
    if dataset is None:
        raise ValueError(
            "the artifact records no dataset; pass --dataset explicitly"
        )
    if artifact.encoder_config is None:
        raise ValueError(
            "the artifact has no encoder config and cannot serve raw "
            "features; re-save it with an encoder"
        )
    seed = args.seed
    if seed is None:
        seed = int(artifact.metadata.get("dataset_seed", 0))
    data = load_dataset(dataset, seed=seed)
    if data.d_in != artifact.encoder_config["d_in"]:
        raise ValueError(
            f"dataset {dataset!r} has {data.d_in} features but the "
            f"artifact's encoder expects {artifact.encoder_config['d_in']}"
        )
    return artifact, data


def _describe(
    n_classes, d_hv, n_live_dims, backend, query_quantizer, privacy
) -> str:
    import math

    privacy_line = "none (no DP claim)"
    if privacy:
        eps = privacy.get("epsilon")
        privacy_line = (
            f"epsilon={eps} delta={privacy.get('delta')} "
            f"noise_std={privacy.get('noise_std'):.4g}"
            if eps is not None and math.isfinite(float(eps))
            else "explicitly non-private"
        )
    return (
        f"artifact: {n_classes} classes x {d_hv} dims "
        f"({n_live_dims} live), backend={backend}, "
        f"query_quantizer={query_quantizer}\n"
        f"privacy: {privacy_line}"
    )


def _describe_artifact(artifact) -> str:
    return _describe(
        artifact.n_classes,
        artifact.d_hv,
        artifact.n_live_dims,
        artifact.backend,
        artifact.query_quantizer,
        artifact.privacy,
    )


def _describe_manifest(path) -> str:
    """The artifact banner from ``manifest.json`` alone.

    The multi-worker serve path uses this: the parent never serves, so
    it should not pay a full tensor load + checksum just to print two
    lines (each worker verifies the artifact itself at mmap-load).
    """
    import json
    import pathlib

    manifest = json.loads(
        (pathlib.Path(path) / "manifest.json").read_text()
    )
    return _describe(
        manifest.get("n_classes"),
        manifest.get("d_hv"),
        manifest.get("n_live_dims"),
        manifest.get("backend"),
        manifest.get("query_quantizer"),
        manifest.get("privacy"),
    )


def _run_eval(args) -> int:
    artifact, data = _load_artifact_for_dataset(args)
    engine = artifact.engine(batch_size=args.batch_size)
    t0 = time.perf_counter()
    acc = engine.accuracy_features(data.X_test, data.y_test)
    elapsed = time.perf_counter() - t0
    print(_describe_artifact(artifact))
    print(
        f"dataset={data.name}: accuracy {acc:.3f} "
        f"({len(data.y_test)} queries in {elapsed * 1e3:.1f} ms)"
    )
    recorded = artifact.metadata.get("test_accuracy")
    if recorded is not None:
        print(f"recorded at save time: {recorded}")
    return 0


def _run_serve(args) -> int:
    import threading

    import numpy as np

    from repro.serve import MicroBatchConfig, ModelRegistry, ModelServer

    if args.listen is not None:
        return _run_serve_listen(args)
    if args.fleet_dir is not None:
        raise ValueError(
            "--fleet-dir serves over the network; add --listen HOST:PORT"
        )
    if args.artifact is None:
        raise ValueError("serve needs an artifact directory (or --fleet-dir)")

    artifact, data = _load_artifact_for_dataset(args)
    print(_describe_artifact(artifact))

    registry = ModelRegistry()
    registry.publish("model", artifact)
    engine = registry.resolve("model")

    n = min(args.requests, len(data.y_test))
    X = data.X_test[:n]
    # Offline reference: the same engine, one packed batch.
    t0 = time.perf_counter()
    direct = engine.predict_features(X)
    offline_s = time.perf_counter() - t0

    config = MicroBatchConfig(
        max_batch=args.max_batch,
        eager=not args.paced,
        max_delay_s=args.max_delay_ms / 1e3,
        max_queue_rows=args.max_queue_rows,
        max_queue_age_s=(
            None
            if args.max_queue_age_ms is None
            else args.max_queue_age_ms / 1e3
        ),
    )
    results = np.full(n, -1, dtype=np.int64)
    failures: list[Exception] = []

    def client(worker: int) -> None:
        for i in range(worker, n, args.clients):
            try:
                results[i] = server.predict_features(X[i])
            except Exception as exc:  # noqa: BLE001 — counted, reported
                failures.append(exc)

    with ModelServer(
        registry, default_model="model", config=config
    ) as server:
        threads = [
            threading.Thread(target=client, args=(w,))
            for w in range(args.clients)
        ]
        perf = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        served_s = time.perf_counter() - perf
        stats = server.stats()["model.predict_features"]

    identical = bool(np.array_equal(results, direct))
    acc = float(np.mean(results == data.y_test[:n]))
    print(
        f"served {n} single-query requests from {args.clients} clients "
        f"in {served_s * 1e3:.1f} ms ({n / max(served_s, 1e-9):,.0f} q/s; "
        f"offline batch: {n / max(offline_s, 1e-9):,.0f} q/s)"
    )
    print(
        f"micro-batching: {stats.flushes} flushes, "
        f"mean batch {stats.mean_batch_rows:.1f} rows "
        f"(max {stats.max_batch_rows}), triggers {stats.flushes_by_trigger}"
    )
    print(
        f"accuracy {acc:.3f}; predictions identical to offline batch: "
        f"{identical}; failed requests: {len(failures)}"
    )
    if failures or not identical:
        print("ERROR: serving diverged from the offline engine", file=sys.stderr)
        return 1
    return 0


def _run_serve_listen(args) -> int:
    """``serve ARTIFACT --listen host:port``: the network frontend.

    Binds the versioned binary protocol (plus the optional HTTP ops
    port), prints the bound addresses, and serves until interrupted.
    Remote clients (``prive-hd client``) get the same micro-batched
    packed scoring and zero-drop hot-swap as in-process callers — and
    can only ever send encoded hypervectors, never raw features.

    ``--workers K`` (K > 1) serves through a
    :class:`~repro.serve.WorkerPool` instead: K acceptor processes
    share the listen address via ``SO_REUSEPORT``, each memory-mapping
    the same checksum-verified artifact read-only.

    ``--fleet-dir DIR`` (instead of an artifact) serves every tenant
    subdirectory through a :class:`~repro.serve.ModelFleet` with an
    LRU artifact cache bounded by ``--cache-bytes``; clients address
    tenants with ``client --tenant NAME`` (protocol v4).
    """
    from repro.client import parse_address
    from repro.serve import (
        FleetAPI,
        FrontendConfig,
        MicroBatchConfig,
        ModelFleet,
        ServingAPI,
        ServingFrontend,
        WorkerPool,
        load_artifact,
    )

    if (args.artifact is None) == (args.fleet_dir is None):
        raise ValueError(
            "serve --listen needs exactly one of an artifact directory "
            "or --fleet-dir"
        )
    host, port = parse_address(args.listen)
    config = MicroBatchConfig(
        max_batch=args.max_batch,
        eager=not args.paced,
        max_delay_s=args.max_delay_ms / 1e3,
        max_queue_rows=args.max_queue_rows,
        max_queue_age_s=(
            None
            if args.max_queue_age_ms is None
            else args.max_queue_age_ms / 1e3
        ),
    )
    frontend_config = FrontendConfig(
        handshake_timeout_s=args.handshake_timeout_s,
        idle_timeout_s=args.idle_timeout_s,
        write_high_water_bytes=(
            None
            if args.write_high_water_kib is None
            else args.write_high_water_kib * 1024
        ),
    )
    if args.workers > 1:
        if args.http_port is not None:
            raise ValueError(
                "--http-port is per-process and not available with "
                "--workers > 1; run a single worker for the ops port"
            )
        # Banner from the manifest only — the parent never serves the
        # tensors itself; the pool constructor checksum-verifies the
        # artifact once and the workers mmap-load without re-hashing.
        # Fleet pools skip even that: tenants are listed, then verified
        # lazily at first admission so startup stays O(1) in fleet size.
        if args.artifact is not None:
            print(_describe_manifest(args.artifact))
        else:
            print(f"fleet dir {args.fleet_dir}")
        with WorkerPool(
            args.artifact,
            fleet_dir=args.fleet_dir,
            cache_bytes=args.cache_bytes,
            name=args.model_name,
            workers=args.workers,
            host=host,
            port=port,
            config=config,
            frontend_config=frontend_config,
            loop=args.loop,
            supervise=True,
        ) as pool:
            print(
                f"{args.workers} workers listening on "
                f"{pool.address[0]}:{pool.address[1]} (SO_REUSEPORT)",
                flush=True,
            )
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        return 0
    if args.fleet_dir is not None:
        fleet = ModelFleet.from_dir(args.fleet_dir, cache_bytes=args.cache_bytes)
        print(
            f"fleet of {len(fleet)} tenants (default {fleet.default_tenant!r}, "
            f"cache budget "
            f"{'unbounded' if args.cache_bytes is None else args.cache_bytes})"
        )
        api = FleetAPI(fleet, config=config)
    else:
        artifact = load_artifact(args.artifact)
        print(_describe_artifact(artifact))
        api = ServingAPI.from_artifact(
            artifact, name=args.model_name, config=config
        )
    with api:
        frontend = ServingFrontend(
            api,
            host=host,
            port=port,
            http_port=args.http_port,
            config=frontend_config,
            loop=args.loop,
        )
        frontend.run()
    return 0


def _run_client(args) -> int:
    """``client ARTIFACT --connect host:port``: remote inference.

    The artifact directory is read *locally* for the encoder config and
    quantizer (the codebooks live with the client in the split
    deployment); features are encoded + obfuscated on this side and
    only hypervector bit planes cross the wire.  Exits non-zero if the
    remote predictions diverge from the local offline engine.
    """
    import numpy as np

    from repro.client import PriveHDClient
    from repro.core.inference_privacy import ObfuscationConfig

    artifact, data = _load_artifact_for_dataset(args)
    print(_describe_artifact(artifact))

    n = min(args.requests, len(data.y_test))
    X, y = data.X_test[:n], data.y_test[:n]
    quantizer = artifact.query_quantizer or "identity"
    with PriveHDClient(
        args.connect,
        encoder=artifact.encoder_config,
        obfuscation=ObfuscationConfig(quantizer=quantizer),
        tenant=args.tenant,
        connect_retries=args.retries,
    ) as client:
        info = client.info
        tenant_note = "" if args.tenant is None else f", tenant={args.tenant}"
        print(
            f"connected to {args.connect} (protocol v"
            f"{client.protocol_version}): model={info.name} v{info.version}, "
            f"backend={info.backend}, d_hv={info.d_hv}{tenant_note}"
        )
        # Batched wire scoring: each chunk ships as one frame (a v2
        # ScoreBatchRequest when the server speaks v2, a plain
        # ScoreRequest on a v1 downgrade), pipelined so client-side
        # encoding overlaps server-side scoring.
        t0 = time.perf_counter()
        preds = client.predict_many(X, chunk_size=args.batch_size)
        elapsed = time.perf_counter() - t0

    acc = float(np.mean(preds == y))
    print(
        f"remote accuracy {acc:.3f} ({n} queries in {elapsed * 1e3:.1f} ms, "
        f"{n / max(elapsed, 1e-9):,.0f} q/s over the socket)"
    )

    # Offline reference: the same artifact served in-process.  The wire
    # must change the transport, never the answers.
    offline = artifact.engine().predict_features(X)
    identical = bool(np.array_equal(preds, offline))
    print(f"predictions identical to offline eval: {identical}")
    if not identical:
        print(
            "ERROR: remote predictions diverged from the offline engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_privacy_gate(args) -> int:
    """``privacy-gate``: attack a live socket server over captured bytes.

    Starts a real fleet frontend, tees every connection through a
    capturing proxy, drives one client session per protocol version
    (v1–v4) and per quantizer (bipolar/ternary/ternary-biased/masked,
    plus the obfuscation-bypassed identity foil), and replays the
    paper's reconstruction and membership attacks against the captured
    frames.  Fails (exit 1) when a protected leg leaks more than the
    thresholds allow, when the built-in self-test cannot make the
    bypassed leg fail (the gate would be toothless), or when leakage
    regresses beyond the committed baseline's tolerance band.
    """
    import json
    import pathlib

    from repro.attacks.wire import (
        GateConfig,
        compare_to_baseline,
        run_privacy_gate,
    )

    config = GateConfig(
        d_hv=args.dhv,
        n_queries=args.queries,
        seed=args.seed,
        n_membership_trials=args.membership_trials,
    )
    t0 = time.perf_counter()
    report = run_privacy_gate(config, log=lambda line: print(f"  {line}"))
    elapsed = time.perf_counter() - t0
    doc = report.to_dict()

    print(
        f"\n{'leg':<18} {'ver':>3} {'quant':<15} {'psnr dB':>8} "
        f"{'plain':>7} {'drop':>6} {'nmse':>7} {'member':>6}"
    )
    for row in report.rows:
        print(
            f"{row.leg:<18} {row.protocol_version:>3} "
            f"{row.quantizer:<15} {row.psnr_db:>8.2f} "
            f"{row.psnr_plain_db:>7.2f} {row.psnr_drop_db:>6.2f} "
            f"{row.nmse:>7.3f} {row.membership_top1:>6.2f}"
        )
    print(
        f"\nattacked {len(report.rows)} live sessions in {elapsed:.1f}s; "
        f"self-test (obfuscation bypassed must fail): "
        f"{'ok' if report.self_test.get('failed_as_expected') else 'BROKEN'}"
    )
    for violation in report.violations:
        print(f"VIOLATION: {violation}", file=sys.stderr)
    if not report.self_test.get("failed_as_expected"):
        print(
            "SELF-TEST FAILED: the bypassed (identity) leg passed the "
            "protected criteria — the gate has no teeth",
            file=sys.stderr,
        )

    if args.out is not None:
        pathlib.Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
        print(f"wrote report to {args.out}")

    baseline_path = pathlib.Path(args.baseline)
    if args.update_baseline:
        baseline_path.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"baseline updated: {baseline_path}")
        return 0 if report.passed else 1
    regressions: list[str] = []
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        regressions = compare_to_baseline(doc, baseline)
        for problem in regressions:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if not regressions:
            print(f"no leakage regression vs {baseline_path}")
    elif not args.no_baseline:
        print(
            f"error: baseline {baseline_path} not found; run with "
            "--update-baseline to create it or --no-baseline to skip "
            "the comparison",
            file=sys.stderr,
        )
        return 2
    return 0 if report.passed and not regressions else 1


def _run_throughput(args) -> int:
    from repro.serve.bench import render_throughput_report, run_throughput

    results = run_throughput(
        backend=args.backend,
        d_hv=args.dhv,
        n_queries=args.n_queries,
        n_classes=args.n_classes,
        batch_size=args.batch_size,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(render_throughput_report(results))
    if not results.identical:
        print("ERROR: backend predictions diverged", file=sys.stderr)
        return 1
    return 0


#: experiment name -> (description, runner)
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("reconstruct digits from encodings (Fig. 2)", _run_fig2),
    "fig3": ("information across dimensions (Fig. 3)", _run_fig3),
    "fig4": ("retraining recovers pruning loss (Fig. 4)", _run_fig4),
    "fig5": ("encoding quantization trade-off (Fig. 5)", _run_fig5),
    "fig6": ("inference quantization + masking (Fig. 6)", _run_fig6),
    "fig8": ("differentially private training (Fig. 8)", _run_fig8),
    "fig9": ("inference privacy, all datasets (Fig. 9)", _run_fig9),
    "table1": ("FPGA/GPU/RPi platform comparison (Table I)", _run_table1),
    "hw": ("approximate-datapath ablation (§III-D)", _run_hw),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prive-hd",
        description="Reproduce the Prive-HD (DAC 2020) experiments.",
    )
    parser.add_argument(
        "--traceback",
        action="store_true",
        help="re-raise command errors with a full traceback (debugging)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    for name, (desc, _) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument(
            "--dhv",
            type=int,
            default=4000,
            help="hypervector dimensionality (paper: 10000)",
        )
        p.add_argument("--seed", type=int, default=0, help="root seed")
    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--dhv", type=int, default=4000)
    p_all.add_argument("--seed", type=int, default=0)

    p_train = sub.add_parser(
        "train", help="train on a benchmark dataset with batched encoding"
    )
    p_train.add_argument(
        "dataset", choices=("isolet", "mnist", "face"), help="dataset name"
    )
    p_train.add_argument("--dhv", type=int, default=4000)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument(
        "--encoder",
        choices=("scalar-base", "level-base"),
        default="scalar-base",
        help="Eq. 2a (scalar-base) or Eq. 2b (level-base) encoding",
    )
    p_train.add_argument(
        "--quantizer",
        default="bipolar",
        help="encoding quantizer (bipolar/ternary/ternary-biased/2bit/identity)",
    )
    p_train.add_argument(
        "--batch-size",
        type=int,
        default=1024,
        help=(
            "queries scored per serving batch, and the default "
            "--chunk-size (bounds peak memory)"
        ),
    )
    p_train.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help=(
            "rows per encode-pipeline tile (bounds peak encoding memory); "
            "defaults to --batch-size"
        ),
    )
    p_train.add_argument(
        "--encode-workers",
        type=int,
        default=1,
        help="concurrent encode tiles",
    )
    p_train.add_argument(
        "--encode-executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "worker pool kind: threads share the codebooks read-only "
            "(good for the BLAS scalar-base path); processes rebuild "
            "them from one pickled copy and are what parallelizes the "
            "GIL-bound packed level-base kernel on multi-core hosts"
        ),
    )
    p_train.add_argument(
        "--backend",
        choices=("dense", "packed", "native"),
        default="dense",
        help=(
            "compute path for test-set inference; with a packable "
            "quantizer all backends serve the same quantized model and "
            "give identical answers ('native' = numba-compiled packed "
            "kernels, falls back to pure NumPy when numba is absent)"
        ),
    )
    p_train.add_argument(
        "--save",
        default=None,
        metavar="PATH",
        help=(
            "write the trained model as a versioned artifact directory "
            "(manifest.json + tensors.npz) loadable by 'serve' and 'eval'"
        ),
    )

    p_eval = sub.add_parser(
        "eval", help="load a saved artifact and report its test accuracy"
    )
    p_eval.add_argument("artifact", help="artifact directory (from train --save)")
    p_eval.add_argument(
        "--dataset",
        default=None,
        help="dataset to evaluate on (default: the one recorded at save time)",
    )
    p_eval.add_argument(
        "--seed",
        type=int,
        default=None,
        help="dataset seed (default: recorded at save time)",
    )
    p_eval.add_argument("--batch-size", type=int, default=8192)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "serve a saved artifact to concurrent clients through the "
            "micro-batching scheduler and report latency/throughput"
        ),
    )
    p_serve.add_argument(
        "artifact",
        nargs="?",
        default=None,
        help=(
            "artifact directory (from train --save); omit when serving "
            "a multi-tenant fleet with --fleet-dir"
        ),
    )
    p_serve.add_argument(
        "--fleet-dir",
        default=None,
        metavar="DIR",
        help=(
            "with --listen: serve every tenant subdirectory of DIR "
            "(each a saved artifact) as a multi-tenant fleet instead of "
            "a single artifact; clients pick tenants with "
            "'client --tenant NAME'"
        ),
    )
    p_serve.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help=(
            "with --fleet-dir: LRU budget for resident class-store "
            "bytes; least-recently-scored tenants are evicted and "
            "reloaded (checksum re-verified) on demand "
            "(default: unbounded)"
        ),
    )
    p_serve.add_argument("--dataset", default=None)
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    p_serve.add_argument(
        "--requests",
        type=int,
        default=512,
        help="total single-query requests across all clients",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="micro-batch flush size (rows)",
    )
    p_serve.add_argument(
        "--paced",
        action="store_true",
        help=(
            "hold batches for --max-delay-ms instead of eager "
            "backpressure batching"
        ),
    )
    p_serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="paced-mode flush deadline (tail-latency bound)",
    )
    p_serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help=(
            "serve the artifact over the network instead of running the "
            "self-driving benchmark: binds the binary serving protocol "
            "and runs until interrupted (clients: 'prive-hd client')"
        ),
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help=(
            "with --listen: also bind a JSON ops port "
            "(/healthz, /models, /stats, /tenants); 0 picks a free port"
        ),
    )
    p_serve.add_argument(
        "--model-name",
        default="model",
        help="registry name the artifact is served under (default: model)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "with --listen: acceptor processes sharing the address via "
            "SO_REUSEPORT, each mmap-loading the artifact read-only "
            "(1 = single in-process frontend)"
        ),
    )
    p_serve.add_argument(
        "--loop",
        choices=("asyncio", "uvloop"),
        default="asyncio",
        help=(
            "with --listen: event-loop implementation for the "
            "frontend/acceptors; 'uvloop' falls back to asyncio (with "
            "a log line) when the package is not installed"
        ),
    )
    p_serve.add_argument(
        "--max-queue-rows",
        type=int,
        default=None,
        help=(
            "admission control: reject new submissions (typed "
            "'overloaded' errors with a retry-after hint) once this "
            "many rows are queued (default: unbounded)"
        ),
    )
    p_serve.add_argument(
        "--max-queue-age-ms",
        type=float,
        default=None,
        help=(
            "admission control: reject new submissions while the oldest "
            "queued request has waited longer than this "
            "(default: unbounded)"
        ),
    )
    p_serve.add_argument(
        "--handshake-timeout-s",
        type=float,
        default=None,
        help=(
            "with --listen: close connections that do not complete the "
            "Hello handshake within this many seconds (default: never)"
        ),
    )
    p_serve.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help=(
            "with --listen: close negotiated connections idle for this "
            "many seconds between frames (default: never)"
        ),
    )
    p_serve.add_argument(
        "--write-high-water-kib",
        type=int,
        default=None,
        help=(
            "with --listen: per-connection write-buffer high-water mark "
            "in KiB; a slow-reading client past it stops being read "
            "(default: asyncio's 64 KiB)"
        ),
    )

    p_client = sub.add_parser(
        "client",
        help=(
            "run remote inference against a 'serve --listen' frontend; "
            "encodes + obfuscates locally so only hypervector bit planes "
            "cross the wire, and verifies predictions against the "
            "offline engine"
        ),
    )
    p_client.add_argument(
        "artifact",
        help=(
            "local artifact directory providing the client-side encoder "
            "config and quantizer (codebooks never cross the wire)"
        ),
    )
    p_client.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the serving frontend",
    )
    p_client.add_argument(
        "--tenant",
        default=None,
        help=(
            "tenant to address on a fleet server (protocol v4); the "
            "client refuses to run against pre-v4 servers rather than "
            "silently hitting the default tenant"
        ),
    )
    p_client.add_argument("--dataset", default=None)
    p_client.add_argument("--seed", type=int, default=None)
    p_client.add_argument(
        "--requests",
        type=int,
        default=256,
        help="test queries to send",
    )
    p_client.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="queries per ScoreRequest frame",
    )
    p_client.add_argument(
        "--retries",
        type=int,
        default=20,
        help="connect retries while the server is still binding",
    )

    p_tp = sub.add_parser(
        "throughput", help="measure dense vs packed serving throughput"
    )
    p_tp.add_argument(
        "--backend",
        choices=("dense", "packed", "native", "both", "all"),
        default="both",
        help=(
            "backend(s) to measure; 'both' = dense+packed, 'all' adds "
            "the numba-compiled native backend"
        ),
    )
    p_tp.add_argument("--dhv", type=int, default=10000)
    p_tp.add_argument("--seed", type=int, default=0)
    p_tp.add_argument("--n-queries", type=int, default=2000)
    p_tp.add_argument("--n-classes", type=int, default=26)
    p_tp.add_argument("--batch-size", type=int, default=8192)
    p_tp.add_argument("--repeats", type=int, default=3)

    p_gate = sub.add_parser(
        "privacy-gate",
        help=(
            "attack a live serving session over captured wire bytes and "
            "fail on leakage regression"
        ),
    )
    p_gate.add_argument("--dhv", type=int, default=2048)
    p_gate.add_argument("--queries", type=int, default=48)
    p_gate.add_argument("--seed", type=int, default=0)
    p_gate.add_argument(
        "--membership-trials",
        type=int,
        default=8,
        help="model-difference linkage trials per leg",
    )
    p_gate.add_argument(
        "--out",
        default=None,
        help="write the full gate report JSON here (e.g. BENCH_privacy.json)",
    )
    p_gate.add_argument(
        "--baseline",
        default="BENCH_privacy.json",
        help="committed baseline to diff leakage against",
    )
    p_gate.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of diffing",
    )
    p_gate.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the baseline comparison (thresholds still enforced)",
    )
    return parser


def _dispatch(args) -> int:
    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {desc}")
        return 0
    if args.command == "all":
        for name, (desc, runner) in EXPERIMENTS.items():
            print(f"\n##### {name}: {desc} #####")
            runner(args)
        return 0
    if args.command == "train":
        return _run_train(args)
    if args.command == "eval":
        return _run_eval(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "client":
        return _run_client(args)
    if args.command == "throughput":
        return _run_throughput(args)
    if args.command == "privacy-gate":
        return _run_privacy_gate(args)
    EXPERIMENTS[args.command][1](args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Runtime failures (missing artifact, corrupt checksum, mismatched
    dataset, …) exit 1 with a one-line error on stderr instead of a
    traceback; ``--traceback`` on any command re-raises for debugging.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except (KeyboardInterrupt, SystemExit, BrokenPipeError):
        raise
    except Exception as exc:  # noqa: BLE001 — the CLI's error boundary
        if getattr(args, "traceback", False):
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

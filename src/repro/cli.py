"""``prive-hd`` command-line interface.

Runs any of the paper's experiments from a shell and prints the
paper-style tables:

    prive-hd list                 # what can I run?
    prive-hd fig5                 # regenerate Fig. 5 (reduced scale)
    prive-hd table1               # Table I platform comparison
    prive-hd all                  # everything (minutes)

Every experiment accepts ``--seed``; the heavier ones accept ``--dhv``
to trade fidelity for speed (paper scale is ``--dhv 10000``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import (
    fig2_reconstruction,
    fig3_information,
    fig4_retraining,
    fig5_quantization,
    fig6_obfuscation,
    fig8_dp_training,
    fig9_inference_privacy,
    hw_approx,
    table1_platforms,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_fig2(args) -> None:
    result = fig2_reconstruction.run(d_hv=args.dhv, seed=args.seed)
    result.to_table().print()


def _run_fig3(args) -> None:
    result = fig3_information.run(d_hv=args.dhv, seed=args.seed)
    for table in result.to_tables():
        table.print()
    print(f"\nrank of classes A/B retained: {result.rank_retained}")


def _run_fig4(args) -> None:
    result = fig4_retraining.run(
        d_hv_base=args.dhv,
        configs=(
            fig4_retraining.Fig4Config(args.dhv, 100),
            fig4_retraining.Fig4Config(1000, 50),
            fig4_retraining.Fig4Config(1000, 100),
            fig4_retraining.Fig4Config(500, 50),
            fig4_retraining.Fig4Config(500, 100),
        ),
        seed=args.seed,
    )
    result.to_table().print()


def _run_fig5(args) -> None:
    dims = tuple(
        sorted({max(256, args.dhv // 4), args.dhv // 2, args.dhv})
    )
    result = fig5_quantization.run(
        dims_list=dims, d_hv=args.dhv, seed=args.seed
    )
    for table in result.to_tables():
        table.print()
    print(f"\nfull-precision baseline: {result.full_precision_accuracy:.3f}")


def _run_fig6(args) -> None:
    result = fig6_obfuscation.run(d_hv=args.dhv, seed=args.seed)
    result.to_table().print()
    result.psnr_table().print()


def _run_fig8(args) -> None:
    for name in ("isolet", "face", "mnist"):
        dims = tuple(
            sorted({max(256, args.dhv // 8), args.dhv // 4, args.dhv // 2, args.dhv})
        )
        result = fig8_dp_training.run_dims_sweep(
            dataset=name, dims_list=dims, d_hv=args.dhv, seed=args.seed
        )
        result.to_table().print()
    fig8_dp_training.run_datasize_sweep(
        d_hv=args.dhv, seed=args.seed
    ).to_table().print()


def _run_fig9(args) -> None:
    masked = tuple(
        sorted({0, args.dhv // 4, args.dhv // 2, 3 * args.dhv // 4})
    )
    result = fig9_inference_privacy.run(
        masked_list=masked, d_hv=args.dhv, seed=args.seed
    )
    for table in result.to_tables():
        table.print()


def _run_table1(args) -> None:
    result = table1_platforms.run()
    result.to_table().print()
    result.factors_table().print()


def _run_hw(args) -> None:
    result = hw_approx.run(seed=args.seed)
    result.to_table().print()
    print(
        f"\nLUT savings: bipolar {result.lut_saving_bipolar:.1%}, "
        f"ternary {result.lut_saving_ternary:.1%}"
    )


#: experiment name -> (description, runner)
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("reconstruct digits from encodings (Fig. 2)", _run_fig2),
    "fig3": ("information across dimensions (Fig. 3)", _run_fig3),
    "fig4": ("retraining recovers pruning loss (Fig. 4)", _run_fig4),
    "fig5": ("encoding quantization trade-off (Fig. 5)", _run_fig5),
    "fig6": ("inference quantization + masking (Fig. 6)", _run_fig6),
    "fig8": ("differentially private training (Fig. 8)", _run_fig8),
    "fig9": ("inference privacy, all datasets (Fig. 9)", _run_fig9),
    "table1": ("FPGA/GPU/RPi platform comparison (Table I)", _run_table1),
    "hw": ("approximate-datapath ablation (§III-D)", _run_hw),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prive-hd",
        description="Reproduce the Prive-HD (DAC 2020) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    for name, (desc, _) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument(
            "--dhv",
            type=int,
            default=4000,
            help="hypervector dimensionality (paper: 10000)",
        )
        p.add_argument("--seed", type=int, default=0, help="root seed")
    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--dhv", type=int, default=4000)
    p_all.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, (desc, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {desc}")
        return 0
    if args.command == "all":
        for name, (desc, runner) in EXPERIMENTS.items():
            print(f"\n##### {name}: {desc} #####")
            runner(args)
        return 0
    EXPERIMENTS[args.command][1](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The serving protocol: typed messages + versioned binary wire format.

This package defines everything that crosses the client/cloud boundary
of the §III-C split deployment — and, just as deliberately, everything
that cannot: the message vocabulary has no way to express raw feature
vectors, codebooks, or encoder configs, so the untrusted serving side
only ever receives encoded (quantized, masked, bit-packed) query
hypervectors.

* :mod:`repro.proto.wire` — the 8-byte-header, length-prefixed frame
  format, version negotiation, the zero-copy
  :class:`FrameDecoder`/:class:`VectoredWriter` pair, and the
  fail-closed :class:`ProtocolError` decoding discipline;
* :mod:`repro.proto.messages` — the typed request/response dataclasses
  (:class:`ScoreRequest`, :class:`ScoreResponse`, :class:`ModelInfo`,
  :class:`ErrorReply`, handshake :class:`Hello`/:class:`Welcome`) and
  their exact round-tripping codecs;
* :mod:`repro.proto.session` — the sans-io :class:`WireSession` state
  machine (handshake → framed steady state) both transports run on.
"""

from repro.proto.messages import (
    ERROR_CODES,
    RETRYABLE_ERROR_CODES,
    ErrorReply,
    Hello,
    ModelInfo,
    ModelInfoRequest,
    ScoreBatchRequest,
    ScoreBatchResponse,
    ScoreRequest,
    ScoreResponse,
    Welcome,
    decode_message,
    encode_message,
    encode_message_parts,
)
from repro.proto.session import WireSession, sendmsg_all
from repro.proto.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_MIN_VERSION,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    VectoredWriter,
    decode_header,
    encode_frame,
    negotiate_version,
)

__all__ = [
    "ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "ErrorReply",
    "Hello",
    "ModelInfo",
    "ModelInfoRequest",
    "ScoreBatchRequest",
    "ScoreBatchResponse",
    "ScoreRequest",
    "ScoreResponse",
    "Welcome",
    "decode_message",
    "encode_message",
    "encode_message_parts",
    "WireSession",
    "sendmsg_all",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_MIN_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "ProtocolError",
    "VectoredWriter",
    "decode_header",
    "encode_frame",
    "negotiate_version",
]

"""The versioned, length-prefixed binary wire format of the serving API.

Every byte that crosses the client/cloud boundary of §III-C goes through
this module.  A frame is::

    +----------+---------+-----------+--------------+-----------------+
    | magic 2B | ver 1B  | type 1B   | length 4B BE | payload (length)|
    +----------+---------+-----------+--------------+-----------------+

* ``magic`` — ``b"HD"``; anything else is rejected immediately (a peer
  speaking the wrong protocol never gets to allocate payload buffers);
* ``ver`` — the protocol version of this frame.  Clients open with a
  :class:`~repro.proto.messages.Hello` listing every version they speak;
  the server answers :class:`~repro.proto.messages.Welcome` with the
  highest common one, and both sides stamp it on every later frame;
* ``type`` — one :data:`FrameType` per message dataclass;
* ``length`` — payload bytes to follow, capped at ``max_frame_bytes``
  so a corrupt or hostile length field cannot make the server allocate
  gigabytes.

Scalar fields are big-endian (network order); bulk arrays are raw
little-endian buffers with their dtype fixed by the message schema
(``<u8`` bit planes, ``<f4`` dense hypervectors, ``<i8`` predictions,
``<f8`` scores) — the natural layout on every platform we serve from,
and 16× smaller than float32 for packed queries.

**The privacy boundary is structural.**  The payload schemas below are
the *only* things this module can serialize, and none of them has a
field for raw ``(d_in,)`` feature vectors, codebooks, or encoder
configs: :func:`encode_message` dispatches on exact message type and
raises for anything else, and every array a
:class:`~repro.proto.messages.ScoreRequest` carries is validated to be a
``d_hv``-wide hypervector batch.  A client simply has no way to put
features on the wire — see ``tests/client/test_privacy_boundary.py``,
which sniffs real frames for feature and codebook bytes.

Malformed input (bad magic, oversize length, truncated payload,
trailing garbage, unknown frame type, undecodable strings) raises
:class:`ProtocolError`, never an arbitrary exception: the fuzz tests in
``tests/proto/test_wire.py`` feed mutated and truncated frames and
assert the decoder fails closed.
"""

from __future__ import annotations

import struct
from enum import IntEnum

import numpy as np

from repro.backend.packed import PackedHV, n_words

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameType",
    "FRAME_MIN_VERSION",
    "Frame",
    "ProtocolError",
    "encode_frame",
    "decode_header",
    "FrameDecoder",
    "negotiate_version",
    "PayloadWriter",
    "PayloadReader",
]

#: first two bytes of every frame
MAGIC = b"HD"

#: the version this build speaks natively.
#:
#: * **v1** — the original conversation: ``ScoreRequest``/``ScoreResponse``
#:   plus model metadata and the handshake.
#: * **v2** — adds the batched scoring frames
#:   (``ScoreBatchRequest``/``ScoreBatchResponse``, carrying N logical
#:   sub-requests in one frame/one scheduler submit) and extends
#:   ``ModelInfo`` with the deployment mask seed of pruned models.
#: * **v3** — extends the scoring requests with an optional
#:   ``deadline_ms`` budget (the server drops a request unscored when
#:   its budget expires in the queue).  The overload error codes
#:   (``"overloaded"``/``"deadline-exceeded"``) ride the *existing*
#:   error frame as new code strings, so they are version-independent.
PROTOCOL_VERSION = 3

#: every version this build can decode (negotiation picks the highest
#: common entry)
SUPPORTED_VERSIONS = (1, 2, 3)

#: magic(2) + version(1) + frame type(1) + payload length(4, big-endian)
HEADER_SIZE = 8

_HEADER = struct.Struct("!2sBBI")

#: default cap on a single frame's payload (64 MiB) — a hostile length
#: field must not turn into an allocation
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A frame or payload violates the wire format.

    Raised for bad magic, oversize or truncated frames, unknown frame
    types, undecodable payloads, and version mismatches — every way a
    peer can deviate from the protocol maps to this one exception, so
    transports fail closed instead of leaking :mod:`struct` internals.
    """


class FrameType(IntEnum):
    """One wire type byte per message dataclass."""

    HELLO = 1
    WELCOME = 2
    SCORE_REQUEST = 3
    SCORE_RESPONSE = 4
    MODEL_INFO_REQUEST = 5
    MODEL_INFO = 6
    ERROR = 7
    SCORE_BATCH_REQUEST = 8
    SCORE_BATCH_RESPONSE = 9


#: lowest protocol version at which each frame type exists.  Encoding a
#: frame for (or decoding one stamped with) an older version raises
#: :class:`ProtocolError` — a v1 peer must never see a v2-only frame.
FRAME_MIN_VERSION = {
    FrameType.SCORE_BATCH_REQUEST: 2,
    FrameType.SCORE_BATCH_RESPONSE: 2,
}


class Frame:
    """A decoded frame: its protocol version, type byte, and payload."""

    __slots__ = ("version", "frame_type", "payload")

    def __init__(self, version: int, frame_type: int, payload: bytes):
        self.version = version
        self.frame_type = frame_type
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            kind = FrameType(self.frame_type).name
        except ValueError:
            kind = f"0x{self.frame_type:02x}"
        return f"Frame(v{self.version}, {kind}, {len(self.payload)}B)"


def encode_frame(
    frame_type: int, payload: bytes, *, version: int = PROTOCOL_VERSION
) -> bytes:
    """Wrap a payload in the 8-byte header."""
    return _HEADER.pack(MAGIC, version, int(frame_type), len(payload)) + payload


def decode_header(
    header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, int]:
    """Parse an 8-byte header into ``(version, frame_type, length)``.

    Rejects bad magic and hostile lengths before any payload is read.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"frame header must be {HEADER_SIZE} bytes, got {len(header)}"
        )
    magic, version, frame_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return version, frame_type, length


def negotiate_version(offered, *, supported=None) -> int | None:
    """The highest version both sides speak, or ``None`` if disjoint.

    ``supported`` overrides this build's :data:`SUPPORTED_VERSIONS` —
    how a server pins itself to an older dialect (and how the
    cross-version tests simulate one) without patching the module.
    """
    if supported is None:
        supported = SUPPORTED_VERSIONS
    common = set(int(v) for v in offered) & set(int(v) for v in supported)
    return max(common) if common else None


class FrameDecoder:
    """Incremental frame splitter for stream transports.

    Feed arbitrary byte chunks; complete frames come back in order.
    Errors (bad magic, oversize length) are raised on the ``feed`` that
    makes them detectable — after a framing error the stream cannot be
    resynchronized, so transports must close the connection.
    """

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data``; return every frame it completes."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                break
            version, frame_type, length = decode_header(
                bytes(self._buf[:HEADER_SIZE]),
                max_frame_bytes=self.max_frame_bytes,
            )
            if len(self._buf) < HEADER_SIZE + length:
                break
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            del self._buf[: HEADER_SIZE + length]
            frames.append(Frame(version, frame_type, payload))
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)


# ----------------------------------------------------------------------
# payload primitives
# ----------------------------------------------------------------------
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")

#: u16 sentinel marking an absent optional string
_NONE_STR = 0xFFFF


class PayloadWriter:
    """Append-only builder for payload bytes (scalars big-endian)."""

    def __init__(self):
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "PayloadWriter":
        """Append one unsigned byte."""
        self._parts.append(_U8.pack(int(value)))
        return self

    def u16(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 16-bit integer."""
        self._parts.append(_U16.pack(int(value)))
        return self

    def u32(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 32-bit integer."""
        self._parts.append(_U32.pack(int(value)))
        return self

    def u64(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 64-bit integer (range-checked)."""
        try:
            self._parts.append(_U64.pack(int(value)))
        except struct.error as exc:
            raise ProtocolError(f"u64 field out of range: {exc}") from exc
        return self

    def f64(self, value: float) -> "PayloadWriter":
        """Append a big-endian IEEE 754 binary64 float."""
        self._parts.append(_F64.pack(float(value)))
        return self

    def string(self, value: str | None) -> "PayloadWriter":
        """A length-prefixed UTF-8 string; ``None`` is a u16 sentinel."""
        if value is None:
            self._parts.append(_U16.pack(_NONE_STR))
            return self
        raw = str(value).encode("utf-8")
        if len(raw) >= _NONE_STR:
            raise ProtocolError(
                f"string field of {len(raw)} bytes exceeds the wire limit"
            )
        self._parts.append(_U16.pack(len(raw)))
        self._parts.append(raw)
        return self

    def array(self, arr: np.ndarray, dtype: str) -> "PayloadWriter":
        """Raw little-endian buffer of ``arr`` as ``dtype`` (no shape)."""
        self._parts.append(np.ascontiguousarray(arr, dtype=dtype).tobytes())
        return self

    def getvalue(self) -> bytes:
        """The accumulated payload bytes."""
        return b"".join(self._parts)


class PayloadReader:
    """Sequential payload parser; every read is bounds-checked.

    :meth:`done` asserts full consumption — trailing garbage after a
    well-formed prefix is a protocol violation, not padding.
    """

    def __init__(self, payload: bytes):
        self._buf = payload
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._buf):
            raise ProtocolError(
                f"payload truncated: needed {n} bytes at offset "
                f"{self._pos}, only {len(self._buf) - self._pos} left"
            )
        out = self._buf[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        """Read one unsigned byte."""
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        """Read a big-endian unsigned 16-bit integer."""
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        """Read a big-endian unsigned 32-bit integer."""
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        """Read a big-endian unsigned 64-bit integer."""
        return _U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        """Read a big-endian IEEE 754 binary64 float."""
        return _F64.unpack(self._take(8))[0]

    def string(self) -> str | None:
        """Read a length-prefixed UTF-8 string (``None`` sentinel aware)."""
        length = self.u16()
        if length == _NONE_STR:
            return None
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable string field: {exc}") from exc

    def array(self, count: int, dtype: str) -> np.ndarray:
        """A typed view over the payload bytes — zero-copy, read-only.

        Consumers that need to mutate (none on the serving path: the
        scheduler concatenates, the kernels only read) must copy
        themselves; skipping the copy here keeps large query frames off
        the decoder's profile.
        """
        dt = np.dtype(dtype)
        raw = self._take(int(count) * dt.itemsize)
        return np.frombuffer(raw, dtype=dt)

    def done(self) -> None:
        """Assert the payload was fully consumed (no trailing bytes)."""
        if self._pos != len(self._buf):
            raise ProtocolError(
                f"{len(self._buf) - self._pos} trailing bytes after a "
                "well-formed payload"
            )


# ----------------------------------------------------------------------
# hypervector payload codec (shared by ScoreRequest)
# ----------------------------------------------------------------------
#: query payload kinds
QUERY_DENSE = 0
QUERY_PACKED = 1


def write_queries(w: PayloadWriter, queries) -> None:
    """Serialize a hypervector batch: packed bit planes or dense f32.

    This is the *only* array-of-hypervectors writer in the protocol.  It
    accepts exactly two shapes of data — a :class:`PackedHV` batch (two
    ``(n, n_words)`` uint64 planes, the §III-C offload payload) or a
    dense 2-D ``(n, d)`` batch — and refuses everything else, which is
    what makes "raw features cannot be framed" a property of the
    encoder rather than a convention: feature matrices are ``(n, d_in)``
    with ``d_in`` unequal to any served ``d_hv``, and 1-D/ragged/object
    inputs never reach a buffer.
    """
    if isinstance(queries, PackedHV):
        w.u8(QUERY_PACKED)
        w.u32(queries.n).u32(queries.d)
        w.array(queries.signs, "<u8")
        w.array(queries.mags, "<u8")
        return
    arr = np.asarray(queries)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ProtocolError(
            "queries must be a PackedHV batch or a non-empty 2-D array, "
            f"got shape {getattr(arr, 'shape', None)}"
        )
    if arr.dtype == object:
        raise ProtocolError("object arrays cannot be framed")
    w.u8(QUERY_DENSE)
    w.u32(arr.shape[0]).u32(arr.shape[1])
    w.array(arr, "<f4")


def read_queries(r: PayloadReader):
    """Inverse of :func:`write_queries`: a PackedHV or float32 array."""
    kind = r.u8()
    n = r.u32()
    d = r.u32()
    if n == 0 or d == 0:
        raise ProtocolError(f"empty query batch on the wire (n={n}, d={d})")
    if kind == QUERY_PACKED:
        words = n_words(d)
        signs = r.array(n * words, "<u8").reshape(n, words)
        mags = r.array(n * words, "<u8").reshape(n, words)
        try:
            return PackedHV(signs=signs, mags=mags, d=d)
        except ValueError as exc:
            raise ProtocolError(f"inconsistent packed planes: {exc}") from exc
    if kind == QUERY_DENSE:
        return r.array(n * d, "<f4").reshape(n, d)
    raise ProtocolError(f"unknown query payload kind {kind}")

"""The versioned, length-prefixed binary wire format of the serving API.

Every byte that crosses the client/cloud boundary of §III-C goes through
this module.  A frame is::

    +----------+---------+-----------+--------------+-----------------+
    | magic 2B | ver 1B  | type 1B   | length 4B BE | payload (length)|
    +----------+---------+-----------+--------------+-----------------+

* ``magic`` — ``b"HD"``; anything else is rejected immediately (a peer
  speaking the wrong protocol never gets to allocate payload buffers);
* ``ver`` — the protocol version of this frame.  Clients open with a
  :class:`~repro.proto.messages.Hello` listing every version they speak;
  the server answers :class:`~repro.proto.messages.Welcome` with the
  highest common one, and both sides stamp it on every later frame;
* ``type`` — one :data:`FrameType` per message dataclass;
* ``length`` — payload bytes to follow, capped at ``max_frame_bytes``
  so a corrupt or hostile length field cannot make the server allocate
  gigabytes.  The cap is enforced from the *header*, before a single
  payload byte is buffered.

Scalar fields are big-endian (network order); bulk arrays are raw
little-endian buffers with their dtype fixed by the message schema
(``<u8`` bit planes, ``<f4`` dense hypervectors, ``<i8`` predictions,
``<f8`` scores) — the natural layout on every platform we serve from,
and 16× smaller than float32 for packed queries.

Zero-copy discipline
--------------------
The codec is sans-io and avoids materializing payload bytes wherever it
can:

* :class:`FrameDecoder` yields frames whose ``payload`` is a read-only
  :class:`memoryview`.  A frame contained entirely in one fed ``bytes``
  chunk is a *view into that chunk* — no copy at all; a frame spanning
  chunks is assembled once into a dedicated per-frame buffer.  Emitted
  views are backed by buffers the decoder never writes again, so they
  stay valid for as long as the caller (or a ``np.frombuffer`` array
  over them) holds on — there is no reuse point to escape past.
* :class:`VectoredWriter` builds a frame as an iovec-style list of
  buffers (the scalar scratch plus one :class:`memoryview` per large
  array plane) for ``socket.sendmsg`` / ``writelines``, instead of
  concatenating everything into one bytes object.
* ``bytes()`` copies happen only at fail-closed edges: string decoding
  and header parsing (a fixed 8-byte scratch).

**The privacy boundary is structural.**  The payload schemas below are
the *only* things this module can serialize, and none of them has a
field for raw ``(d_in,)`` feature vectors, codebooks, or encoder
configs: :func:`encode_message` dispatches on exact message type and
raises for anything else, and every array a
:class:`~repro.proto.messages.ScoreRequest` carries is validated to be a
``d_hv``-wide hypervector batch.  A client simply has no way to put
features on the wire — see ``tests/client/test_privacy_boundary.py``,
which sniffs real frames for feature and codebook bytes.

Malformed input (bad magic, oversize length, truncated payload,
trailing garbage, unknown frame type, undecodable strings) raises
:class:`ProtocolError`, never an arbitrary exception: the fuzz tests in
``tests/proto/test_wire.py`` feed mutated and truncated frames and
assert the decoder fails closed.
"""

from __future__ import annotations

import struct
from enum import IntEnum

import numpy as np

from repro.backend.packed import PackedHV, n_words

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameType",
    "FRAME_MIN_VERSION",
    "Frame",
    "ProtocolError",
    "encode_frame",
    "decode_header",
    "FrameDecoder",
    "negotiate_version",
    "PayloadWriter",
    "VectoredWriter",
    "PayloadReader",
]

#: first two bytes of every frame
MAGIC = b"HD"

#: the version this build speaks natively.
#:
#: * **v1** — the original conversation: ``ScoreRequest``/``ScoreResponse``
#:   plus model metadata and the handshake.
#: * **v2** — adds the batched scoring frames
#:   (``ScoreBatchRequest``/``ScoreBatchResponse``, carrying N logical
#:   sub-requests in one frame/one scheduler submit) and extends
#:   ``ModelInfo`` with the deployment mask seed of pruned models.
#: * **v3** — extends the scoring requests with an optional
#:   ``deadline_ms`` budget (the server drops a request unscored when
#:   its budget expires in the queue).  The overload error codes
#:   (``"overloaded"``/``"deadline-exceeded"``) ride the *existing*
#:   error frame as new code strings, so they are version-independent.
#: * **v4** — extends ``ScoreRequest``/``ScoreBatchRequest`` and
#:   ``ModelInfoRequest`` with an optional ``tenant`` key (u16
#:   length-prefixed UTF-8, the standard optional-string encoding)
#:   addressing one namespace of a multi-tenant model fleet.  Absent
#:   means the default tenant, so a v3 peer that negotiates down is
#:   served exactly as before; an unknown key is refused with the typed
#:   ``"unknown-tenant"`` error code (non-retryable).
PROTOCOL_VERSION = 4

#: every version this build can decode (negotiation picks the highest
#: common entry)
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: magic(2) + version(1) + frame type(1) + payload length(4, big-endian)
HEADER_SIZE = 8

_HEADER = struct.Struct("!2sBBI")

#: default cap on a single frame's payload (64 MiB) — a hostile length
#: field must not turn into an allocation
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A frame or payload violates the wire format.

    Raised for bad magic, oversize or truncated frames, unknown frame
    types, undecodable payloads, and version mismatches — every way a
    peer can deviate from the protocol maps to this one exception, so
    transports fail closed instead of leaking :mod:`struct` internals.
    """


class FrameType(IntEnum):
    """One wire type byte per message dataclass."""

    HELLO = 1
    WELCOME = 2
    SCORE_REQUEST = 3
    SCORE_RESPONSE = 4
    MODEL_INFO_REQUEST = 5
    MODEL_INFO = 6
    ERROR = 7
    SCORE_BATCH_REQUEST = 8
    SCORE_BATCH_RESPONSE = 9


#: lowest protocol version at which each frame type exists.  Encoding a
#: frame for (or decoding one stamped with) an older version raises
#: :class:`ProtocolError` — a v1 peer must never see a v2-only frame.
FRAME_MIN_VERSION = {
    FrameType.SCORE_BATCH_REQUEST: 2,
    FrameType.SCORE_BATCH_RESPONSE: 2,
}


class Frame:
    """A decoded frame: its protocol version, type byte, and payload.

    ``payload`` is bytes-like — a read-only :class:`memoryview` when it
    comes off a :class:`FrameDecoder` (zero-copy into the receive
    buffer), plain ``bytes`` when constructed by hand.  Either way it
    compares equal to the same bytes and feeds straight into
    ``np.frombuffer``.
    """

    __slots__ = ("version", "frame_type", "payload")

    def __init__(self, version: int, frame_type: int, payload):
        self.version = version
        self.frame_type = frame_type
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            kind = FrameType(self.frame_type).name
        except ValueError:
            kind = f"0x{self.frame_type:02x}"
        return f"Frame(v{self.version}, {kind}, {len(self.payload)}B)"


def encode_frame(
    frame_type: int, payload: bytes, *, version: int = PROTOCOL_VERSION
) -> bytes:
    """Wrap a payload in the 8-byte header."""
    return _HEADER.pack(MAGIC, version, int(frame_type), len(payload)) + payload


def decode_header(
    header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, int]:
    """Parse an 8-byte header into ``(version, frame_type, length)``.

    Rejects bad magic and hostile lengths before any payload is read.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"frame header must be {HEADER_SIZE} bytes, got {len(header)}"
        )
    magic, version, frame_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return version, frame_type, length


def negotiate_version(offered, *, supported=None) -> int | None:
    """The highest version both sides speak, or ``None`` if disjoint.

    ``supported`` overrides this build's :data:`SUPPORTED_VERSIONS` —
    how a server pins itself to an older dialect (and how the
    cross-version tests simulate one) without patching the module.
    """
    if supported is None:
        supported = SUPPORTED_VERSIONS
    common = set(int(v) for v in offered) & set(int(v) for v in supported)
    return max(common) if common else None


_EMPTY_PAYLOAD = memoryview(b"")


class FrameDecoder:
    """Incremental zero-copy frame splitter for stream transports.

    Feed arbitrary byte chunks; complete frames come back in order with
    read-only :class:`memoryview` payloads.  A frame lying entirely
    inside one fed ``bytes`` chunk is a view into that chunk (no copy);
    a frame spanning chunks is assembled once into its own buffer.
    Both backing buffers are immutable-after-emit, so payload views —
    and ``np.frombuffer`` arrays over them — stay valid indefinitely.

    The header is parsed the moment its 8 bytes exist, so an oversize
    length field is rejected *before* any payload is buffered: a
    hostile peer cannot make the receiver accumulate ``max_frame_bytes``
    of garbage ahead of the typed error.

    Errors (bad magic, oversize length) are raised on the ``feed`` that
    makes them detectable — after a framing error the stream cannot be
    resynchronized, so transports must close the connection.

    Pull mode (``recv_buffer``/``commit``) inverts the flow for
    blocking sockets: the decoder hands out a writable buffer for
    ``recv_into`` and parses whatever landed — mid-payload the buffer
    *is* the frame's final assembly buffer, so large payloads stream
    from the kernel straight to their resting place with zero
    userspace copies.
    """

    def __init__(self, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._header = bytearray(HEADER_SIZE)
        self._header_fill = 0
        self._version = 0
        self._frame_type = 0
        self._length = -1  # -1: header incomplete
        self._assembly: bytearray | None = None
        self._payload_fill = 0
        self._pull_chunk: bytearray | None = None
        self._pull_direct = False
        #: frames emitted over this decoder's lifetime
        self.frames_decoded = 0
        #: payload bytes that had to be copied (chunk-spanning assembly);
        #: the wire-profile's bytes-copied-per-frame numerator
        self.copied_payload_bytes = 0

    # -- push mode -----------------------------------------------------
    def feed(self, data) -> list[Frame]:
        """Absorb ``data``; return every frame it completes.

        ``bytes`` input is the zero-copy fast path (payload views alias
        the chunk).  Mutable input (``bytearray``/``memoryview``) is
        copied defensively first — the caller may reuse its buffer.
        """
        if isinstance(data, bytes):
            return self._feed(memoryview(data))
        copy = bytes(data)
        self.copied_payload_bytes += len(copy)
        return self._feed(memoryview(copy))

    def _feed(self, mv: memoryview) -> list[Frame]:
        if mv.ndim != 1 or mv.itemsize != 1:
            mv = mv.cast("B")
        frames: list[Frame] = []
        pos, end = 0, mv.nbytes
        while pos < end:
            if self._length < 0:
                take = min(HEADER_SIZE - self._header_fill, end - pos)
                self._header[
                    self._header_fill : self._header_fill + take
                ] = mv[pos : pos + take]
                self._header_fill += take
                pos += take
                if self._header_fill < HEADER_SIZE:
                    break
                self._version, self._frame_type, self._length = decode_header(
                    bytes(self._header), max_frame_bytes=self.max_frame_bytes
                )
                if self._length == 0:
                    frames.append(self._emit(_EMPTY_PAYLOAD))
                continue
            length = self._length
            avail = end - pos
            if (
                self._assembly is None
                and self._payload_fill == 0
                and avail >= length
            ):
                # Whole payload inside this chunk: emit a view, no copy.
                frames.append(self._emit(mv[pos : pos + length]))
                pos += length
                continue
            if self._assembly is None:
                self._assembly = bytearray(length)
            take = min(length - self._payload_fill, avail)
            self._assembly[
                self._payload_fill : self._payload_fill + take
            ] = mv[pos : pos + take]
            self.copied_payload_bytes += take
            self._payload_fill += take
            pos += take
            if self._payload_fill == length:
                done = self._assembly
                self._assembly = None
                frames.append(self._emit(memoryview(done).toreadonly()))
        return frames

    def _emit(self, payload: memoryview) -> Frame:
        frame = Frame(self._version, self._frame_type, payload)
        self._length = -1
        self._header_fill = 0
        self._payload_fill = 0
        self.frames_decoded += 1
        return frame

    # -- pull mode (recv_into) -----------------------------------------
    def recv_buffer(self, hint: int = 65536) -> memoryview:
        """A writable buffer to ``recv_into``; commit what landed after.

        Mid-payload this is the tail of the frame's own assembly buffer
        — received bytes go straight to their final resting place.
        Between frames it is a fresh chunk the decoder will parse (and
        alias payload views into) on :meth:`commit`; chunks are never
        reused, so emitted views cannot be invalidated.
        """
        if self._length >= 0:
            if self._assembly is None:
                self._assembly = bytearray(self._length)
            self._pull_direct = True
            return memoryview(self._assembly)[self._payload_fill :]
        self._pull_direct = False
        self._pull_chunk = bytearray(max(int(hint), HEADER_SIZE))
        return memoryview(self._pull_chunk)

    def commit(self, nbytes: int) -> list[Frame]:
        """Account ``nbytes`` received into the last :meth:`recv_buffer`."""
        if nbytes < 0:
            raise ValueError(f"committed byte count must be >= 0: {nbytes}")
        if nbytes == 0:
            return []
        if self._pull_direct:
            self._payload_fill += nbytes
            if self._payload_fill < self._length:
                return []
            done = self._assembly
            self._assembly = None
            return [self._emit(memoryview(done).toreadonly())]
        chunk = self._pull_chunk
        self._pull_chunk = None
        if chunk is None or nbytes > len(chunk):
            raise ValueError(
                "commit() without a matching recv_buffer(), or more bytes "
                "than the buffer holds"
            )
        # The chunk was freshly allocated and is never written again —
        # views into it are as stable as views into bytes.
        return self._feed(memoryview(chunk)[:nbytes])

    # -- state ---------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        if self._length < 0:
            return self._header_fill
        return HEADER_SIZE + self._payload_fill

    @property
    def awaiting_header(self) -> bool:
        """True between frames or mid-header (no length parsed yet)."""
        return self._length < 0

    @property
    def header_fill(self) -> int:
        """Header bytes received toward the current frame (0..8)."""
        return HEADER_SIZE if self._length >= 0 else self._header_fill

    @property
    def payload_expected(self) -> int:
        """Payload length of the in-progress frame (0 mid-header)."""
        return self._length if self._length >= 0 else 0

    @property
    def payload_received(self) -> int:
        """Payload bytes received toward the in-progress frame."""
        return self._payload_fill


# ----------------------------------------------------------------------
# payload primitives
# ----------------------------------------------------------------------
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")

#: u16 sentinel marking an absent optional string
_NONE_STR = 0xFFFF


class PayloadWriter:
    """Append-only builder for payload bytes (scalars big-endian).

    The materializing counterpart of :class:`VectoredWriter`: same
    field vocabulary, but :meth:`getvalue` concatenates everything into
    one ``bytes``.  Kept for tests and small out-of-band payloads; the
    message codec itself emits vectored buffer lists.
    """

    def __init__(self):
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "PayloadWriter":
        """Append one unsigned byte."""
        self._parts.append(_U8.pack(int(value)))
        return self

    def u16(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 16-bit integer."""
        self._parts.append(_U16.pack(int(value)))
        return self

    def u32(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 32-bit integer."""
        self._parts.append(_U32.pack(int(value)))
        return self

    def u64(self, value: int) -> "PayloadWriter":
        """Append a big-endian unsigned 64-bit integer (range-checked)."""
        try:
            self._parts.append(_U64.pack(int(value)))
        except struct.error as exc:
            raise ProtocolError(f"u64 field out of range: {exc}") from exc
        return self

    def f64(self, value: float) -> "PayloadWriter":
        """Append a big-endian IEEE 754 binary64 float."""
        self._parts.append(_F64.pack(float(value)))
        return self

    def string(self, value: str | None) -> "PayloadWriter":
        """A length-prefixed UTF-8 string; ``None`` is a u16 sentinel."""
        if value is None:
            self._parts.append(_U16.pack(_NONE_STR))
            return self
        raw = str(value).encode("utf-8")
        if len(raw) >= _NONE_STR:
            raise ProtocolError(
                f"string field of {len(raw)} bytes exceeds the wire limit"
            )
        self._parts.append(_U16.pack(len(raw)))
        self._parts.append(raw)
        return self

    def array(self, arr: np.ndarray, dtype: str) -> "PayloadWriter":
        """Raw little-endian buffer of ``arr`` as ``dtype`` (no shape)."""
        self._parts.append(np.ascontiguousarray(arr, dtype=dtype).tobytes())
        return self

    def getvalue(self) -> bytes:
        """The accumulated payload bytes."""
        return b"".join(self._parts)


#: arrays at or below this many bytes are staged into the scalar
#: scratch instead of getting their own iovec entry — below it the
#: copy is cheaper than another sendmsg vector slot
_INLINE_ARRAY_BYTES = 1024


class VectoredWriter:
    """Build one frame as an iovec-style buffer list — no concatenation.

    Same field vocabulary as :class:`PayloadWriter` (the message codecs
    are duck-typed over both), but instead of joining everything into
    one ``bytes`` it stages the header and scalar fields in a scratch
    ``bytearray`` and keeps each large array plane as a
    :class:`memoryview` over the (contiguous) array itself.
    :meth:`frame_parts` back-fills the header with the final payload
    length and returns the buffer list, ready for ``socket.sendmsg`` or
    ``writelines`` — the transport is the only place payload bytes are
    copied.

    A reusable ``scratch`` makes the scalar staging allocation-free
    across frames (the per-connection write scratch of the serving
    path).  Scratch-backed parts are valid until the scratch is next
    written or cleared — consume them (send/join) before encoding the
    next frame into the same scratch.
    """

    def __init__(self, scratch: bytearray | None = None):
        self._buf = bytearray() if scratch is None else scratch
        self._base = len(self._buf)
        self._buf += b"\x00" * HEADER_SIZE  # header, back-filled at the end
        self._open = self._base
        self._parts: list = []  # (start, end) scratch spans | array views
        self._array_bytes = 0
        #: array bytes copied into the scratch (small inlined arrays) —
        #: the write-side bytes-copied-per-frame numerator
        self.copied_bytes = 0

    def u8(self, value: int) -> "VectoredWriter":
        """Append one unsigned byte."""
        self._buf += _U8.pack(int(value))
        return self

    def u16(self, value: int) -> "VectoredWriter":
        """Append a big-endian unsigned 16-bit integer."""
        self._buf += _U16.pack(int(value))
        return self

    def u32(self, value: int) -> "VectoredWriter":
        """Append a big-endian unsigned 32-bit integer."""
        self._buf += _U32.pack(int(value))
        return self

    def u64(self, value: int) -> "VectoredWriter":
        """Append a big-endian unsigned 64-bit integer (range-checked)."""
        try:
            self._buf += _U64.pack(int(value))
        except struct.error as exc:
            raise ProtocolError(f"u64 field out of range: {exc}") from exc
        return self

    def f64(self, value: float) -> "VectoredWriter":
        """Append a big-endian IEEE 754 binary64 float."""
        self._buf += _F64.pack(float(value))
        return self

    def string(self, value: str | None) -> "VectoredWriter":
        """A length-prefixed UTF-8 string; ``None`` is a u16 sentinel."""
        if value is None:
            self._buf += _U16.pack(_NONE_STR)
            return self
        raw = str(value).encode("utf-8")
        if len(raw) >= _NONE_STR:
            raise ProtocolError(
                f"string field of {len(raw)} bytes exceeds the wire limit"
            )
        self._buf += _U16.pack(len(raw))
        self._buf += raw
        return self

    def array(self, arr: np.ndarray, dtype: str) -> "VectoredWriter":
        """Reference ``arr``'s little-endian buffer as its own part.

        Large arrays become a zero-copy :class:`memoryview` (which
        keeps the contiguous array alive); tiny ones are inlined into
        the scratch where a copy beats an extra iovec slot.
        """
        a = np.ascontiguousarray(arr, dtype=dtype)
        if a.nbytes <= _INLINE_ARRAY_BYTES:
            self._buf += a.tobytes()
            self.copied_bytes += a.nbytes
            return self
        if len(self._buf) > self._open:
            self._parts.append((self._open, len(self._buf)))
        self._parts.append(memoryview(a).cast("B"))
        self._array_bytes += a.nbytes
        self._open = len(self._buf)
        return self

    def frame_parts(self, frame_type: int, version: int) -> list:
        """Close the frame: back-fill the header, return the iovec list.

        The first part always starts with the 8-byte header (followed
        by any scalar fields staged contiguously after it), so the list
        can go to ``sendmsg`` as-is.
        """
        if len(self._buf) > self._open:
            self._parts.append((self._open, len(self._buf)))
            self._open = len(self._buf)
        length = (len(self._buf) - self._base - HEADER_SIZE) + self._array_bytes
        _HEADER.pack_into(
            self._buf, self._base, MAGIC, version, int(frame_type), length
        )
        scratch = memoryview(self._buf)
        return [
            scratch[p[0] : p[1]] if type(p) is tuple else p
            for p in self._parts
        ]


class PayloadReader:
    """Sequential payload parser; every read is bounds-checked.

    Accepts ``bytes`` or a :class:`memoryview` (what
    :class:`FrameDecoder` emits) and never copies payload bytes except
    at the fail-closed edges (string decoding).  Arrays come back as
    ``np.frombuffer`` views over the payload itself.

    :meth:`done` asserts full consumption — trailing garbage after a
    well-formed prefix is a protocol violation, not padding.
    """

    def __init__(self, payload):
        buf = memoryview(payload)
        if buf.ndim != 1 or buf.itemsize != 1:
            buf = buf.cast("B")
        self._buf = buf
        self._pos = 0

    def _take(self, n: int) -> memoryview:
        if self._pos + n > self._buf.nbytes:
            raise ProtocolError(
                f"payload truncated: needed {n} bytes at offset "
                f"{self._pos}, only {self._buf.nbytes - self._pos} left"
            )
        out = self._buf[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        """Read one unsigned byte."""
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        """Read a big-endian unsigned 16-bit integer."""
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        """Read a big-endian unsigned 32-bit integer."""
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        """Read a big-endian unsigned 64-bit integer."""
        return _U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        """Read a big-endian IEEE 754 binary64 float."""
        return _F64.unpack(self._take(8))[0]

    def string(self) -> str | None:
        """Read a length-prefixed UTF-8 string (``None`` sentinel aware)."""
        length = self.u16()
        if length == _NONE_STR:
            return None
        try:
            return bytes(self._take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable string field: {exc}") from exc

    def array(self, count: int, dtype: str) -> np.ndarray:
        """A typed view over the payload bytes — zero-copy, read-only.

        Consumers that need to mutate (none on the serving path: the
        scheduler concatenates, the kernels only read) must copy
        themselves; skipping the copy here keeps large query frames off
        the decoder's profile.
        """
        dt = np.dtype(dtype)
        raw = self._take(int(count) * dt.itemsize)
        return np.frombuffer(raw, dtype=dt)

    def done(self) -> None:
        """Assert the payload was fully consumed (no trailing bytes)."""
        if self._pos != self._buf.nbytes:
            raise ProtocolError(
                f"{self._buf.nbytes - self._pos} trailing bytes after a "
                "well-formed payload"
            )


# ----------------------------------------------------------------------
# hypervector payload codec (shared by ScoreRequest)
# ----------------------------------------------------------------------
#: query payload kinds
QUERY_DENSE = 0
QUERY_PACKED = 1


def write_queries(w, queries) -> None:
    """Serialize a hypervector batch: packed bit planes or dense f32.

    ``w`` is either writer flavor (:class:`PayloadWriter` or
    :class:`VectoredWriter`) — the field vocabulary is identical.

    This is the *only* array-of-hypervectors writer in the protocol.  It
    accepts exactly two shapes of data — a :class:`PackedHV` batch (two
    ``(n, n_words)`` uint64 planes, the §III-C offload payload) or a
    dense 2-D ``(n, d)`` batch — and refuses everything else, which is
    what makes "raw features cannot be framed" a property of the
    encoder rather than a convention: feature matrices are ``(n, d_in)``
    with ``d_in`` unequal to any served ``d_hv``, and 1-D/ragged/object
    inputs never reach a buffer.
    """
    if isinstance(queries, PackedHV):
        w.u8(QUERY_PACKED)
        w.u32(queries.n).u32(queries.d)
        w.array(queries.signs, "<u8")
        w.array(queries.mags, "<u8")
        return
    arr = np.asarray(queries)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ProtocolError(
            "queries must be a PackedHV batch or a non-empty 2-D array, "
            f"got shape {getattr(arr, 'shape', None)}"
        )
    if arr.dtype == object:
        raise ProtocolError("object arrays cannot be framed")
    w.u8(QUERY_DENSE)
    w.u32(arr.shape[0]).u32(arr.shape[1])
    w.array(arr, "<f4")


def read_queries(r: PayloadReader):
    """Inverse of :func:`write_queries`: a PackedHV or float32 array."""
    kind = r.u8()
    n = r.u32()
    d = r.u32()
    if n == 0 or d == 0:
        raise ProtocolError(f"empty query batch on the wire (n={n}, d={d})")
    if kind == QUERY_PACKED:
        words = n_words(d)
        signs = r.array(n * words, "<u8").reshape(n, words)
        mags = r.array(n * words, "<u8").reshape(n, words)
        try:
            return PackedHV(signs=signs, mags=mags, d=d)
        except ValueError as exc:
            raise ProtocolError(f"inconsistent packed planes: {exc}") from exc
    if kind == QUERY_DENSE:
        return r.array(n * d, "<f4").reshape(n, d)
    raise ProtocolError(f"unknown query payload kind {kind}")

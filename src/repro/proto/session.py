"""Sans-io protocol sessions: handshake + framed steady state, no sockets.

:class:`WireSession` is the one protocol state machine both transports
run on — the asyncio :class:`~repro.serve.ServingFrontend` and the
blocking :class:`~repro.client.PriveHDClient` used to each own a copy
of the framing loop (readexactly-per-frame on one side, recv-and-split
on the other); now both push bytes into a session and pull
:class:`~repro.proto.wire.Frame` objects out, and the session owns

* receive buffering (the zero-copy :class:`~repro.proto.wire.FrameDecoder`,
  including its ``recv_into`` pull mode),
* version negotiation state (handshake → steady, with the negotiated
  version enforced on every steady-state frame),
* frame emission (vectored buffer lists staged in a reusable
  per-session scratch — the per-connection write scratch of the reply
  path).

Being sans-io, the same core serves any transport: a blocking socket
calls :func:`sendmsg_all` on :meth:`WireSession.send_parts` output, an
asyncio handler hands :meth:`WireSession.render_frame` to
``transport.write`` (one immutable ``bytes`` per frame — asyncio and
uvloop transports may retain write buffers, so scratch-backed views
must not reach them), and a future thread-per-core acceptor can do
either.

The session screens frames, it does not decode them: message decoding
(and the typed-reply-on-healthy-connection semantics for application
errors) stays with the caller, which is why a malformed *payload* gets
an :class:`~repro.proto.ErrorReply` while a malformed *frame* poisons
the stream.
"""

from __future__ import annotations

from collections import deque

from repro.proto.messages import encode_message_parts
from repro.proto.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    Frame,
    FrameType,
    PROTOCOL_VERSION,
    ProtocolError,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    negotiate_version,
)

__all__ = ["WireSession", "sendmsg_all"]

#: scratch bigger than this after a send is released rather than kept
#: (one huge dense frame must not pin its buffer for the connection's
#: lifetime)
_SCRATCH_KEEP_BYTES = 1 << 16


class WireSession:
    """One connection's protocol state: buffering, version, framing.

    Parameters
    ----------
    role:
        ``"server"`` or ``"client"``.  A server session enforces that
        the peer's opening frame is a :class:`~repro.proto.Hello`; a
        client session leaves handshake-reply screening to the caller
        (the reply may legitimately be a typed
        :class:`~repro.proto.ErrorReply`).
    max_frame_bytes:
        Per-frame payload cap, enforced from the header before any
        payload is buffered.
    supported_versions:
        Versions this side negotiates (default: everything this build
        speaks).

    Receive flow: :meth:`receive_data` (push) or
    :meth:`recv_buffer`/:meth:`commit` (pull, for ``recv_into``)
    buffer incoming bytes; :meth:`next_frame` pops one screened frame
    at a time — screening happens at *pop* time, so a frame pipelined
    behind the handshake is judged against the negotiated version, not
    the pre-handshake state.  Send flow: :meth:`send_parts` (vectored,
    for synchronous transports) or :meth:`render_frame` (one ``bytes``,
    for buffering transports), both stamping the negotiated version
    unless overridden.
    """

    def __init__(
        self,
        role: str,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        supported_versions: tuple[int, ...] | None = None,
    ):
        if role not in ("server", "client"):
            raise ValueError(
                f"role must be 'server' or 'client', got {role!r}"
            )
        self.role = role
        self.supported_versions = (
            tuple(SUPPORTED_VERSIONS)
            if supported_versions is None
            else tuple(sorted(int(v) for v in supported_versions))
        )
        #: the version both sides stamp on steady-state frames;
        #: ``None`` until the handshake completes
        self.negotiated: int | None = None
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._queue: deque[Frame] = deque()
        self._scratch = bytearray()
        #: frames sent through this session
        self.tx_frames = 0
        #: payload bytes staged through the scratch per send (scalar
        #: fields + inlined small arrays) — the write-side copy count;
        #: large array planes go by reference and never appear here
        self.tx_copied_bytes = 0

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def receive_data(self, data) -> int:
        """Buffer a received chunk; returns how many frames it completed.

        Completed frames queue internally — drain them one at a time
        with :meth:`next_frame`.  Framing violations (bad magic,
        oversize length) raise here and poison the stream.
        """
        frames = self._decoder.feed(data)
        self._queue.extend(frames)
        return len(frames)

    def recv_buffer(self, hint: int = 65536) -> memoryview:
        """A writable buffer for ``recv_into`` (zero-copy pull mode)."""
        return self._decoder.recv_buffer(hint)

    def commit(self, nbytes: int) -> int:
        """Account bytes received into :meth:`recv_buffer`; frames queue."""
        frames = self._decoder.commit(nbytes)
        self._queue.extend(frames)
        return len(frames)

    def next_frame(self) -> Frame | None:
        """Pop the next buffered frame (screened), or ``None``.

        Screening: before the handshake a server session requires the
        opening frame to be a :class:`~repro.proto.Hello`; after it,
        both roles require every frame to carry the negotiated version.
        Violations raise :class:`~repro.proto.ProtocolError` with the
        stream poisoned — the transport should send a best-effort
        ``bad-frame`` reply and close.
        """
        if not self._queue:
            return None
        frame = self._queue.popleft()
        if self.negotiated is not None:
            if frame.version != self.negotiated:
                raise ProtocolError(
                    f"frame version {frame.version} after "
                    f"negotiating {self.negotiated}"
                )
        elif (
            self.role == "server"
            and frame.frame_type != FrameType.HELLO
        ):
            raise ProtocolError("connection must open with a Hello frame")
        return frame

    def receive_eof(self) -> None:
        """Validate an EOF: clean between frames, an error mid-frame.

        Raises :class:`~repro.proto.ProtocolError` when the peer hung
        up mid-header or mid-payload (with queued complete frames still
        drainable first — call after :meth:`next_frame` returns None).
        """
        d = self._decoder
        if self._queue:
            return
        if d.awaiting_header:
            if d.header_fill == 0:
                return
            raise ProtocolError(
                f"connection closed mid-header ({d.header_fill} bytes)"
            )
        raise ProtocolError(
            f"connection closed mid-payload "
            f"({d.payload_received}/{d.payload_expected} bytes)"
        )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return self._decoder.pending_bytes

    @property
    def has_frames(self) -> bool:
        """Whether buffered complete frames await :meth:`next_frame`."""
        return bool(self._queue)

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------
    def accept_hello(self, versions) -> int | None:
        """Server side: negotiate against the client's offered versions.

        Returns the agreed version (now enforced on every later frame)
        or ``None`` when the offers are disjoint — the caller sends the
        typed ``unsupported-version`` reply and closes.
        """
        version = negotiate_version(
            versions, supported=self.supported_versions
        )
        if version is not None:
            self.negotiated = version
        return version

    def adopt_version(self, version: int) -> None:
        """Client side: enter steady state at the server's version."""
        self.negotiated = int(version)

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def send_parts(self, message, *, version: int | None = None) -> list:
        """Encode one message as a vectored buffer list (iovec-style).

        Staged in the session's reusable scratch: the returned parts
        are valid until the *next* ``send_parts``/``render_frame`` call
        — consume them synchronously (``sendmsg``) before encoding
        again.  Stamps the negotiated version unless overridden.
        """
        v = version if version is not None else self.version
        self._reset_scratch()
        w_before = len(self._scratch)
        parts = encode_message_parts(
            message, version=v, scratch=self._scratch
        )
        self.tx_frames += 1
        self.tx_copied_bytes += max(0, len(self._scratch) - w_before - 8)
        return parts

    def render_frame(self, message, *, version: int | None = None) -> bytes:
        """Encode one message as a single immutable ``bytes`` frame.

        For buffering transports (asyncio/uvloop may retain write
        buffers, so scratch views must not reach them): the one
        explicit copy point of the reply path, reusing the session
        scratch for staging instead of allocating a builder per frame.
        """
        parts = self.send_parts(message, version=version)
        if len(parts) == 1:
            return bytes(parts[0])
        return b"".join(parts)

    @property
    def version(self) -> int:
        """The version to stamp: negotiated, else this build's native."""
        return (
            self.negotiated
            if self.negotiated is not None
            else PROTOCOL_VERSION
        )

    def _reset_scratch(self) -> None:
        # Exports from the previous send normally died when its parts
        # were consumed; if something still holds one, leave that
        # buffer intact and start fresh rather than corrupt it.
        if len(self._scratch) > _SCRATCH_KEEP_BYTES:
            self._scratch = bytearray()
            return
        try:
            self._scratch.clear()
        except BufferError:
            self._scratch = bytearray()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Copy/throughput counters for the wire profile."""
        d = self._decoder
        return {
            "rx_frames": d.frames_decoded,
            "rx_copied_bytes": d.copied_payload_bytes,
            "tx_frames": self.tx_frames,
            "tx_copied_bytes": self.tx_copied_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WireSession({self.role}, negotiated={self.negotiated}, "
            f"pending={self.pending_bytes}B)"
        )


def sendmsg_all(sock, parts) -> int:
    """Send a vectored buffer list fully over a blocking socket.

    ``socket.sendmsg`` gathers the whole frame — header, scalar
    scratch, array planes — in one syscall with zero userspace
    concatenation; short writes continue from the exact byte where the
    kernel stopped.  Falls back to ``sendall`` over a join where
    ``sendmsg`` does not exist.  Returns the bytes sent.
    """
    bufs = []
    for p in parts:
        m = p if isinstance(p, memoryview) else memoryview(p)
        if m.ndim != 1 or m.itemsize != 1:
            m = m.cast("B")
        if m.nbytes:
            bufs.append(m)
    total = sum(m.nbytes for m in bufs)
    if not bufs:
        return 0
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
        sock.sendall(b"".join(bufs))
        return total
    sent = 0
    while bufs:
        n = sock.sendmsg(bufs)
        sent += n
        while bufs and n >= bufs[0].nbytes:
            n -= bufs[0].nbytes
            bufs.pop(0)
        if bufs and n:
            bufs[0] = bufs[0][n:]
    return sent

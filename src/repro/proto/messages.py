"""Typed request/response messages of the serving protocol.

Each dataclass here is one frame type on the wire (see
:mod:`repro.proto.wire` for the framing itself).  The conversation is
deliberately small — score encoded hypervectors, describe models, report
errors — because the remote surface *is* the privacy boundary: there is
no message that could carry raw features, codebooks, or encoder seeds,
so the untrusted serving side can only ever see what the paper's §III-C
client chooses to ship (quantized, masked, bit-packed query
hypervectors).

Handshake
---------
A connection opens with :class:`Hello` (client → server, listing every
protocol version the client speaks) answered by :class:`Welcome`
(server → client, the negotiated version plus the served model names).
Everything after that is :class:`ScoreRequest`/:class:`ScoreResponse`
and :class:`ModelInfoRequest`/:class:`ModelInfo`, with
:class:`ErrorReply` for anything the server refuses.  Protocol **v2**
adds :class:`ScoreBatchRequest`/:class:`ScoreBatchResponse` — N logical
sub-requests stacked into one frame and one scheduler submit — and
extends :class:`ModelInfo` with the deployment mask seed of pruned
models; a connection negotiated at v1 never sees either (the codecs
refuse to encode or decode v2-only frames for a v1 peer).  Protocol
**v4** adds an optional ``tenant`` key to the request messages,
addressing one namespace of a multi-tenant model fleet; absent means
the default tenant, so downgraded peers are served exactly as before.

>>> req = ScoreRequest(queries=packed_queries, request_id=7)
>>> frame = encode_message(req)                    # bytes for the wire
>>> decode_message(decode_frame(frame)) == req     # round-trips exactly
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.packed import PackedHV
from repro.proto.wire import (
    FRAME_MIN_VERSION,
    Frame,
    FrameType,
    PayloadReader,
    PayloadWriter,
    ProtocolError,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    VectoredWriter,
    read_queries,
    write_queries,
)

__all__ = [
    "Hello",
    "Welcome",
    "ScoreRequest",
    "ScoreResponse",
    "ScoreBatchRequest",
    "ScoreBatchResponse",
    "ModelInfoRequest",
    "ModelInfo",
    "ErrorReply",
    "ERROR_CODES",
    "RETRYABLE_ERROR_CODES",
    "encode_message",
    "encode_message_parts",
    "decode_message",
]

#: machine-readable :class:`ErrorReply` codes
ERROR_CODES = (
    "bad-frame",            # unparseable frame or payload; connection closes
    "unsupported-version",  # no common protocol version
    "unknown-model",        # model name not in the registry
    "bad-request",          # well-formed frame, unservable content
    "overloaded",           # admission control shed the request; retry later
    "deadline-exceeded",    # the request's deadline_ms expired unscored
    "unknown-tenant",       # v4 tenant key not hosted by this fleet
    "internal",             # server-side failure answering a valid request
)

#: :class:`ErrorReply` codes a client may safely retry (the request was
#: never scored; scoring is idempotent, so a repeat cannot double-apply)
RETRYABLE_ERROR_CODES = ("overloaded",)


def _check_deadline_ms(deadline_ms) -> int | None:
    if deadline_ms is None:
        return None
    out = int(deadline_ms)
    if out < 1 or out > 0xFFFFFFFF:
        raise ValueError(
            f"deadline_ms must be in [1, 2**32 - 1], got {deadline_ms}"
        )
    return out


@dataclass(frozen=True)
class Hello:
    """Client's opening frame: the protocol versions it speaks.

    Attributes
    ----------
    versions:
        Every protocol version the client can use, ascending.
    client:
        Free-form client identification (logged, never trusted).
    """

    versions: tuple[int, ...] = SUPPORTED_VERSIONS
    client: str = "prive-hd"

    def __post_init__(self):
        if not self.versions:
            raise ValueError("Hello must offer at least one version")
        object.__setattr__(
            self, "versions", tuple(sorted(int(v) for v in self.versions))
        )


@dataclass(frozen=True)
class Welcome:
    """Server's handshake reply: the negotiated protocol version.

    Attributes
    ----------
    version:
        The version both sides will stamp on every subsequent frame.
    server:
        Server identification string.
    models:
        Names the registry currently serves (descriptive — the set can
        change; :class:`ModelInfoRequest` gives authoritative answers).
    """

    version: int = PROTOCOL_VERSION
    server: str = "prive-hd"
    models: tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "models", tuple(self.models))


@dataclass(frozen=True)
class ScoreRequest:
    """Score a batch of *encoded* query hypervectors.

    Attributes
    ----------
    queries:
        A :class:`~repro.backend.PackedHV` batch (bit-plane payload, 16×
        smaller than float32 — what an obfuscating client ships) or a
        dense ``(n, d_hv)`` array of encoded hypervectors.  There is no
        raw-feature variant: encoding happens on the client, always.
    model:
        Registry model name; ``None`` uses the server's default.
    want_scores:
        Also return the full Eq. (4) score matrix (predictions alone are
        the default — smaller frames, and all a classifier client needs).
    request_id:
        Caller-chosen correlation id echoed in the response, so clients
        may pipeline requests over one connection.
    deadline_ms:
        Protocol v3: optional latency budget in milliseconds, counted
        from the moment the server receives the frame.  A request whose
        budget expires while queued is dropped unscored with a typed
        ``"deadline-exceeded"`` error — shed work instead of late
        answers.  Silently omitted on the wire for v1/v2 peers.
    tenant:
        Protocol v4: optional fleet tenant key addressing one namespace
        of a multi-tenant :class:`~repro.serve.fleet.ModelFleet`;
        ``None`` means the default tenant.  A key the fleet does not
        host is refused with the typed ``"unknown-tenant"`` error.
    """

    queries: PackedHV | np.ndarray
    model: str | None = None
    want_scores: bool = False
    request_id: int = 0
    deadline_ms: int | None = None
    tenant: str | None = None

    def __post_init__(self):
        if not isinstance(self.queries, PackedHV):
            arr = np.asarray(self.queries)
            if arr.ndim != 2:
                raise ValueError(
                    "ScoreRequest queries must be a PackedHV or a 2-D "
                    f"(n, d_hv) array, got shape {arr.shape} — raw feature "
                    "vectors do not belong on the wire; encode them first"
                )
            object.__setattr__(self, "queries", arr)
        object.__setattr__(
            self, "deadline_ms", _check_deadline_ms(self.deadline_ms)
        )

    @property
    def n_queries(self) -> int:
        """Rows in the query batch."""
        q = self.queries
        return q.n if isinstance(q, PackedHV) else int(q.shape[0])

    @property
    def d_hv(self) -> int:
        """Hypervector dimensionality of the queries."""
        q = self.queries
        return q.d if isinstance(q, PackedHV) else int(q.shape[1])

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScoreRequest):
            return NotImplemented
        if (
            self.model != other.model
            or self.want_scores != other.want_scores
            or self.request_id != other.request_id
            or self.deadline_ms != other.deadline_ms
            or self.tenant != other.tenant
        ):
            return False
        a, b = self.queries, other.queries
        if isinstance(a, PackedHV) != isinstance(b, PackedHV):
            return False
        if isinstance(a, PackedHV):
            return (
                a.d == b.d
                and np.array_equal(a.signs, b.signs)
                and np.array_equal(a.mags, b.mags)
            )
        return np.array_equal(a, b)


@dataclass(frozen=True)
class ScoreResponse:
    """The server's answer to one :class:`ScoreRequest`.

    Attributes
    ----------
    predictions:
        ``(n,)`` int64 argmax labels, one per query row.
    scores:
        ``(n, n_classes)`` float64 Eq. (4) scores when the request set
        ``want_scores``, else ``None``.
    model, version:
        Which registry entry (and which hot-swappable version of it)
        answered — every row of one response is answered by a single
        consistent version.
    request_id:
        Echo of the request's correlation id.
    """

    predictions: np.ndarray
    scores: np.ndarray | None = None
    model: str = ""
    version: int = 0
    request_id: int = 0

    def __post_init__(self):
        preds = np.asarray(self.predictions, dtype=np.int64)
        if preds.ndim != 1:
            raise ValueError(
                f"predictions must be 1-D, got shape {preds.shape}"
            )
        object.__setattr__(self, "predictions", preds)
        if self.scores is not None:
            scores = np.asarray(self.scores, dtype=np.float64)
            if scores.ndim != 2 or scores.shape[0] != preds.shape[0]:
                raise ValueError(
                    f"scores must be (n={preds.shape[0]}, n_classes), "
                    f"got shape {scores.shape}"
                )
            object.__setattr__(self, "scores", scores)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScoreResponse):
            return NotImplemented
        if (
            self.model != other.model
            or self.version != other.version
            or self.request_id != other.request_id
        ):
            return False
        if not np.array_equal(self.predictions, other.predictions):
            return False
        if (self.scores is None) != (other.scores is None):
            return False
        return self.scores is None or np.array_equal(self.scores, other.scores)


def _check_counts(counts, n_rows: int) -> tuple[int, ...]:
    """Validate chunk boundaries against a stacked query/result block."""
    out = tuple(int(c) for c in counts)
    if not out:
        raise ValueError("counts must name at least one chunk")
    if any(c <= 0 for c in out):
        raise ValueError(f"every chunk count must be >= 1, got {out}")
    if sum(out) != n_rows:
        raise ValueError(
            f"chunk counts sum to {sum(out)} but the block has "
            f"{n_rows} rows"
        )
    return out


@dataclass(frozen=True)
class ScoreBatchRequest:
    """Protocol v2: N logical scoring requests stacked into one frame.

    Where a v1 client ships one :class:`ScoreRequest` frame per request
    and pays a frame decode + scheduler submit for each, a v2 client
    stacks the rows of N requests into a single block, records the
    per-request row counts, and ships *one* frame — the server decodes
    once and submits the whole block to the micro-batcher once, so
    frame parsing, syscalls, and future wakeups amortize over N.

    Attributes
    ----------
    queries:
        The stacked block: a :class:`~repro.backend.PackedHV` batch or a
        dense ``(n, d_hv)`` array, exactly as in :class:`ScoreRequest` —
        the privacy boundary is unchanged (no raw-feature variant).
    counts:
        Rows belonging to each logical sub-request, in block order;
        must sum to the block's row count.  The response echoes them so
        the client can scatter results back per sub-request.
    model:
        Registry model name; ``None`` uses the server's default.
    want_scores:
        Also return the full Eq. (4) score matrix for every row.
    request_id:
        Correlation id echoed in the response.
    deadline_ms:
        Protocol v3: optional latency budget in milliseconds for the
        whole stacked block, exactly as on :class:`ScoreRequest`.
    tenant:
        Protocol v4: optional fleet tenant key for the whole stacked
        block, exactly as on :class:`ScoreRequest`.
    """

    queries: PackedHV | np.ndarray
    counts: tuple[int, ...]
    model: str | None = None
    want_scores: bool = False
    request_id: int = 0
    deadline_ms: int | None = None
    tenant: str | None = None

    def __post_init__(self):
        if not isinstance(self.queries, PackedHV):
            arr = np.asarray(self.queries)
            if arr.ndim != 2:
                raise ValueError(
                    "ScoreBatchRequest queries must be a PackedHV or a "
                    f"2-D (n, d_hv) array, got shape {arr.shape} — raw "
                    "feature vectors do not belong on the wire"
                )
            object.__setattr__(self, "queries", arr)
        object.__setattr__(
            self, "counts", _check_counts(self.counts, self.n_queries)
        )
        object.__setattr__(
            self, "deadline_ms", _check_deadline_ms(self.deadline_ms)
        )

    @property
    def n_queries(self) -> int:
        """Rows in the stacked block (all sub-requests together)."""
        q = self.queries
        return q.n if isinstance(q, PackedHV) else int(q.shape[0])

    @property
    def d_hv(self) -> int:
        """Hypervector dimensionality of the block."""
        q = self.queries
        return q.d if isinstance(q, PackedHV) else int(q.shape[1])

    @property
    def n_chunks(self) -> int:
        """Number of logical sub-requests in the block."""
        return len(self.counts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScoreBatchRequest):
            return NotImplemented
        if (
            self.model != other.model
            or self.want_scores != other.want_scores
            or self.request_id != other.request_id
            or self.counts != other.counts
            or self.deadline_ms != other.deadline_ms
            or self.tenant != other.tenant
        ):
            return False
        a, b = self.queries, other.queries
        if isinstance(a, PackedHV) != isinstance(b, PackedHV):
            return False
        if isinstance(a, PackedHV):
            return (
                a.d == b.d
                and np.array_equal(a.signs, b.signs)
                and np.array_equal(a.mags, b.mags)
            )
        return np.array_equal(a, b)


@dataclass(frozen=True)
class ScoreBatchResponse:
    """The server's answer to one :class:`ScoreBatchRequest`.

    Attributes
    ----------
    predictions:
        ``(n,)`` int64 labels for the whole stacked block, in block
        order.
    counts:
        Echo of the request's per-sub-request row counts;
        :meth:`split` scatters the block back into per-request arrays.
    scores:
        ``(n, n_classes)`` float64 scores when requested, else ``None``.
    model, version:
        The registry entry (and exact hot-swappable version) that
        scored the block — one consistent version for every row.
    request_id:
        Echo of the request's correlation id.
    """

    predictions: np.ndarray
    counts: tuple[int, ...]
    scores: np.ndarray | None = None
    model: str = ""
    version: int = 0
    request_id: int = 0

    def __post_init__(self):
        preds = np.asarray(self.predictions, dtype=np.int64)
        if preds.ndim != 1:
            raise ValueError(
                f"predictions must be 1-D, got shape {preds.shape}"
            )
        object.__setattr__(self, "predictions", preds)
        object.__setattr__(
            self, "counts", _check_counts(self.counts, preds.shape[0])
        )
        if self.scores is not None:
            scores = np.asarray(self.scores, dtype=np.float64)
            if scores.ndim != 2 or scores.shape[0] != preds.shape[0]:
                raise ValueError(
                    f"scores must be (n={preds.shape[0]}, n_classes), "
                    f"got shape {scores.shape}"
                )
            object.__setattr__(self, "scores", scores)

    def split(self) -> list[np.ndarray]:
        """Per-sub-request prediction arrays, in request order."""
        bounds = np.cumsum(self.counts[:-1])
        return np.split(self.predictions, bounds)

    def split_scores(self) -> list[np.ndarray]:
        """Per-sub-request score matrices (requires ``want_scores``)."""
        if self.scores is None:
            raise ValueError("this response carries no scores")
        bounds = np.cumsum(self.counts[:-1])
        return np.split(self.scores, bounds, axis=0)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScoreBatchResponse):
            return NotImplemented
        if (
            self.model != other.model
            or self.version != other.version
            or self.request_id != other.request_id
            or self.counts != other.counts
        ):
            return False
        if not np.array_equal(self.predictions, other.predictions):
            return False
        if (self.scores is None) != (other.scores is None):
            return False
        return self.scores is None or np.array_equal(self.scores, other.scores)


@dataclass(frozen=True)
class ModelInfoRequest:
    """Ask the server to describe a served model (``None`` = default).

    Protocol v4 adds the optional ``tenant`` key: the description is
    resolved inside that fleet tenant's namespace (``None`` = the
    default tenant), so a pruned per-tenant model's ``mask_seed``
    travels exactly as it does on single-tenant connections.
    """

    model: str | None = None
    request_id: int = 0
    tenant: str | None = None


@dataclass(frozen=True)
class ModelInfo:
    """What a client may know about a hosted model.

    Deliberately excludes the encoder config: codebooks live with the
    *client* in the split deployment, and the manifest travels by an
    out-of-band channel (the artifact directory), never this wire.

    Attributes
    ----------
    name, version:
        Registry coordinates of the answering version.
    n_classes, d_hv, n_live_dims:
        Served shape; ``n_live_dims < d_hv`` marks a pruned (§III-B)
        model, whose clients must mask their queries to the same
        dimensions.
    backend:
        The serving compute layout (``"dense"``/``"packed"``).
    query_quantizer:
        Name of the quantizer queries are expected to have gone
        through (``None`` = full precision).
    epsilon:
        The certified DP ε of the served store (``inf`` = no claim).
    mask_seed:
        Protocol v2: the deployment seed of a pruned model's keep-mask
        (the :class:`~repro.core.inference_privacy.ObfuscationConfig`
        ``mask_seed``), when the artifact recorded one.  With it, a
        client regenerates exactly the server's live dimensions
        (``n_masked = d_hv - n_live_dims``) and needs no out-of-band
        mask channel.  The seed reveals only *which* dimensions are
        dead server-side — information the server already holds —
        never anything about the client's features.  ``None`` on v1
        connections and for unpruned or seedless artifacts.
    """

    name: str
    version: int
    n_classes: int
    d_hv: int
    n_live_dims: int
    backend: str
    query_quantizer: str | None = None
    epsilon: float = float("inf")
    mask_seed: int | None = None
    request_id: int = 0

    @property
    def is_pruned(self) -> bool:
        """Whether some served dimensions are dead (``n_live_dims < d_hv``)."""
        return self.n_live_dims < self.d_hv

    @property
    def n_masked(self) -> int:
        """Dimensions a matching client must zero before shipping."""
        return self.d_hv - self.n_live_dims


@dataclass(frozen=True)
class ErrorReply:
    """A machine-readable refusal.

    Attributes
    ----------
    code:
        One of :data:`ERROR_CODES`.
    message:
        Human-readable detail (safe to show; never includes payload
        bytes).  An ``"overloaded"`` reply conventionally starts with
        ``retry_after_ms=N;`` — a structured backoff hint inside the
        existing message field, so older peers that only know the v2
        error frame layout still parse the frame (they just skip the
        hint).  Use :attr:`retry_after_ms` to read it.
    request_id:
        Correlation id of the failed request when known, else 0.
    """

    code: str
    message: str = ""
    request_id: int = 0

    def __post_init__(self):
        if self.code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {self.code!r}; use one of {ERROR_CODES}"
            )

    @classmethod
    def overloaded(
        cls, detail: str, *, retry_after_ms: int, request_id: int = 0
    ) -> "ErrorReply":
        """Build an ``"overloaded"`` reply carrying the backoff hint."""
        return cls(
            code="overloaded",
            message=f"retry_after_ms={max(1, int(retry_after_ms))}; {detail}",
            request_id=request_id,
        )

    @property
    def retry_after_ms(self) -> int | None:
        """The backoff hint parsed from the message, if present."""
        prefix = "retry_after_ms="
        if not self.message.startswith(prefix):
            return None
        head = self.message[len(prefix):].split(";", 1)[0].strip()
        return int(head) if head.isdigit() else None

    @property
    def retryable(self) -> bool:
        """Whether a client may safely resend the failed request."""
        return self.code in RETRYABLE_ERROR_CODES


# ----------------------------------------------------------------------
# per-message payload codecs
# ----------------------------------------------------------------------
# Every codec takes the frame's negotiated protocol version so a field
# added in v2 is written/read only when both sides speak v2 — a v1 peer
# sees byte-identical v1 payloads.
def _write_hello(msg: Hello, w: PayloadWriter, version: int) -> None:
    w.string(msg.client)
    w.u8(len(msg.versions))
    for v in msg.versions:
        w.u8(v)


def _read_hello(r: PayloadReader, version: int) -> Hello:
    client = r.string() or ""
    count = r.u8()
    if count == 0:
        raise ProtocolError("Hello offered zero protocol versions")
    versions = tuple(r.u8() for _ in range(count))
    return Hello(versions=versions, client=client)


def _write_welcome(msg: Welcome, w: PayloadWriter, version: int) -> None:
    w.u8(msg.version)
    w.string(msg.server)
    w.u16(len(msg.models))
    for name in msg.models:
        w.string(name)


def _read_welcome(r: PayloadReader, version: int) -> Welcome:
    version_field = r.u8()
    server = r.string() or ""
    models = tuple(r.string() or "" for _ in range(r.u16()))
    return Welcome(version=version_field, server=server, models=models)


def _write_deadline(w: PayloadWriter, deadline_ms: int | None, version: int):
    """v3 optional-deadline suffix; silently dropped for older peers."""
    if version < 3:
        return
    if deadline_ms is None:
        w.u8(0)
    else:
        w.u8(1)
        w.u32(deadline_ms)


def _read_deadline(r: PayloadReader, version: int) -> int | None:
    if version < 3 or not r.u8():
        return None
    return r.u32()


def _write_tenant(w: PayloadWriter, tenant: str | None, version: int) -> None:
    """v4 optional-tenant suffix; silently dropped for older peers.

    (The *client* refuses to build tenant-addressed requests on a < v4
    connection — silently falling back to the default tenant would
    answer from the wrong model.  The drop here only matters for
    hand-built frames.)
    """
    if version < 4:
        return
    w.string(tenant)


def _read_tenant(r: PayloadReader, version: int) -> str | None:
    if version < 4:
        return None
    return r.string()


def _write_score_request(
    msg: ScoreRequest, w: PayloadWriter, version: int
) -> None:
    w.u32(msg.request_id)
    w.string(msg.model)
    w.u8(1 if msg.want_scores else 0)
    _write_deadline(w, msg.deadline_ms, version)
    _write_tenant(w, msg.tenant, version)
    write_queries(w, msg.queries)


def _read_score_request(r: PayloadReader, version: int) -> ScoreRequest:
    request_id = r.u32()
    model = r.string()
    want_scores = bool(r.u8())
    deadline_ms = _read_deadline(r, version)
    tenant = _read_tenant(r, version)
    queries = read_queries(r)
    return ScoreRequest(
        queries=queries,
        model=model,
        want_scores=want_scores,
        request_id=request_id,
        deadline_ms=deadline_ms,
        tenant=tenant,
    )


def _write_score_response(
    msg: ScoreResponse, w: PayloadWriter, version: int
) -> None:
    w.u32(msg.request_id)
    w.string(msg.model)
    w.u32(msg.version)
    w.u32(msg.predictions.shape[0])
    w.array(msg.predictions, "<i8")
    if msg.scores is None:
        w.u8(0)
    else:
        w.u8(1)
        w.u32(msg.scores.shape[1])
        w.array(msg.scores, "<f8")


def _read_score_response(r: PayloadReader, version: int) -> ScoreResponse:
    request_id = r.u32()
    model = r.string() or ""
    version_field = r.u32()
    n = r.u32()
    predictions = r.array(n, "<i8")
    scores = None
    if r.u8():
        n_classes = r.u32()
        scores = r.array(n * n_classes, "<f8").reshape(n, n_classes)
    return ScoreResponse(
        predictions=predictions,
        scores=scores,
        model=model,
        version=version_field,
        request_id=request_id,
    )


def _write_counts(w: PayloadWriter, counts: tuple[int, ...]) -> None:
    if len(counts) > 0xFFFF:
        raise ProtocolError(
            f"{len(counts)} chunks exceed the u16 wire limit"
        )
    w.u16(len(counts))
    for c in counts:
        w.u32(c)


def _read_counts(r: PayloadReader) -> tuple[int, ...]:
    n_chunks = r.u16()
    if n_chunks == 0:
        raise ProtocolError("batch frame with zero chunks")
    return tuple(r.u32() for _ in range(n_chunks))


def _write_score_batch_request(
    msg: ScoreBatchRequest, w: PayloadWriter, version: int
) -> None:
    w.u32(msg.request_id)
    w.string(msg.model)
    w.u8(1 if msg.want_scores else 0)
    _write_deadline(w, msg.deadline_ms, version)
    _write_tenant(w, msg.tenant, version)
    _write_counts(w, msg.counts)
    write_queries(w, msg.queries)


def _read_score_batch_request(
    r: PayloadReader, version: int
) -> ScoreBatchRequest:
    request_id = r.u32()
    model = r.string()
    want_scores = bool(r.u8())
    deadline_ms = _read_deadline(r, version)
    tenant = _read_tenant(r, version)
    counts = _read_counts(r)
    queries = read_queries(r)
    return ScoreBatchRequest(
        queries=queries,
        counts=counts,
        model=model,
        want_scores=want_scores,
        request_id=request_id,
        deadline_ms=deadline_ms,
        tenant=tenant,
    )


def _write_score_batch_response(
    msg: ScoreBatchResponse, w: PayloadWriter, version: int
) -> None:
    w.u32(msg.request_id)
    w.string(msg.model)
    w.u32(msg.version)
    _write_counts(w, msg.counts)
    w.u32(msg.predictions.shape[0])
    w.array(msg.predictions, "<i8")
    if msg.scores is None:
        w.u8(0)
    else:
        w.u8(1)
        w.u32(msg.scores.shape[1])
        w.array(msg.scores, "<f8")


def _read_score_batch_response(
    r: PayloadReader, version: int
) -> ScoreBatchResponse:
    request_id = r.u32()
    model = r.string() or ""
    version_field = r.u32()
    counts = _read_counts(r)
    n = r.u32()
    predictions = r.array(n, "<i8")
    scores = None
    if r.u8():
        n_classes = r.u32()
        scores = r.array(n * n_classes, "<f8").reshape(n, n_classes)
    return ScoreBatchResponse(
        predictions=predictions,
        counts=counts,
        scores=scores,
        model=model,
        version=version_field,
        request_id=request_id,
    )


def _write_model_info_request(
    msg: ModelInfoRequest, w: PayloadWriter, version: int
) -> None:
    w.u32(msg.request_id)
    w.string(msg.model)
    _write_tenant(w, msg.tenant, version)


def _read_model_info_request(
    r: PayloadReader, version: int
) -> ModelInfoRequest:
    request_id = r.u32()
    model = r.string()
    tenant = _read_tenant(r, version)
    return ModelInfoRequest(model=model, request_id=request_id, tenant=tenant)


def _write_model_info(msg: ModelInfo, w: PayloadWriter, version: int) -> None:
    w.u32(msg.request_id)
    w.string(msg.name)
    w.u32(msg.version)
    w.u32(msg.n_classes)
    w.u32(msg.d_hv)
    w.u32(msg.n_live_dims)
    w.string(msg.backend)
    w.string(msg.query_quantizer)
    w.f64(msg.epsilon)
    if version >= 2:
        if msg.mask_seed is None:
            w.u8(0)
        else:
            w.u8(1)
            w.u64(msg.mask_seed)


def _read_model_info(r: PayloadReader, version: int) -> ModelInfo:
    request_id = r.u32()
    name = r.string() or ""
    version_field = r.u32()
    n_classes = r.u32()
    d_hv = r.u32()
    n_live_dims = r.u32()
    backend = r.string() or ""
    query_quantizer = r.string()
    epsilon = r.f64()
    mask_seed = None
    if version >= 2 and r.u8():
        mask_seed = r.u64()
    return ModelInfo(
        name=name,
        version=version_field,
        n_classes=n_classes,
        d_hv=d_hv,
        n_live_dims=n_live_dims,
        backend=backend,
        query_quantizer=query_quantizer,
        epsilon=epsilon,
        mask_seed=mask_seed,
        request_id=request_id,
    )


def _write_error(msg: ErrorReply, w: PayloadWriter, version: int) -> None:
    w.u32(msg.request_id)
    w.string(msg.code)
    w.string(msg.message)


def _read_error(r: PayloadReader, version: int) -> ErrorReply:
    request_id = r.u32()
    code = r.string() or ""
    message = r.string() or ""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r} on the wire")
    return ErrorReply(code=code, message=message, request_id=request_id)


#: exact message type -> (frame type, writer); the closed world of the
#: wire — anything not in this table cannot be serialized at all
_CODECS = {
    Hello: (FrameType.HELLO, _write_hello),
    Welcome: (FrameType.WELCOME, _write_welcome),
    ScoreRequest: (FrameType.SCORE_REQUEST, _write_score_request),
    ScoreResponse: (FrameType.SCORE_RESPONSE, _write_score_response),
    ScoreBatchRequest: (
        FrameType.SCORE_BATCH_REQUEST,
        _write_score_batch_request,
    ),
    ScoreBatchResponse: (
        FrameType.SCORE_BATCH_RESPONSE,
        _write_score_batch_response,
    ),
    ModelInfoRequest: (FrameType.MODEL_INFO_REQUEST, _write_model_info_request),
    ModelInfo: (FrameType.MODEL_INFO, _write_model_info),
    ErrorReply: (FrameType.ERROR, _write_error),
}

_DECODERS = {
    FrameType.HELLO: _read_hello,
    FrameType.WELCOME: _read_welcome,
    FrameType.SCORE_REQUEST: _read_score_request,
    FrameType.SCORE_RESPONSE: _read_score_response,
    FrameType.SCORE_BATCH_REQUEST: _read_score_batch_request,
    FrameType.SCORE_BATCH_RESPONSE: _read_score_batch_response,
    FrameType.MODEL_INFO_REQUEST: _read_model_info_request,
    FrameType.MODEL_INFO: _read_model_info,
    FrameType.ERROR: _read_error,
}


def encode_message_parts(
    msg, *, version: int = PROTOCOL_VERSION, scratch: bytearray | None = None
) -> list:
    """One message dataclass → an iovec-style buffer list for the wire.

    The zero-copy encoder: the 8-byte header and every scalar field are
    staged contiguously in ``scratch`` (reused across frames by the
    transports — no per-frame builder allocation), while each large
    array plane stays a :class:`memoryview` over the array itself.  The
    concatenation the old single-``bytes`` encoder paid per frame moves
    into the transport (``socket.sendmsg`` gathers the list in one
    syscall; asyncio joins once on write).

    Scratch-backed parts are valid until ``scratch`` is next written or
    cleared; send (or join) them before encoding another frame into the
    same scratch.  With ``scratch=None`` the parts own a private buffer
    and stay valid indefinitely.

    Dispatch is on *exact* type: the codec table above is the entire
    vocabulary of the protocol, so nothing outside it — raw arrays,
    feature batches, encoder objects — can be framed, by construction.
    ``version`` is the connection's negotiated protocol version; frames
    introduced after it (the v2 batch frames on a v1 connection) refuse
    to encode rather than confuse an older peer.
    """
    codec = _CODECS.get(type(msg))
    if codec is None:
        raise ProtocolError(
            f"{type(msg).__name__} is not a wire message; only "
            f"{sorted(c.__name__ for c in _CODECS)} cross the boundary"
        )
    frame_type, writer = codec
    min_version = FRAME_MIN_VERSION.get(frame_type, 1)
    if version < min_version:
        raise ProtocolError(
            f"{type(msg).__name__} requires protocol v{min_version}; "
            f"this connection negotiated v{version}"
        )
    w = VectoredWriter(scratch)
    writer(msg, w, version)
    return w.frame_parts(frame_type, version)


def encode_message(msg, *, version: int = PROTOCOL_VERSION) -> bytes:
    """One message dataclass → one complete wire frame as ``bytes``.

    The materializing convenience over :func:`encode_message_parts`
    (byte-identical output — the golden-frame suite pins this); the
    performance paths hand the parts list to the transport instead.
    """
    return b"".join(encode_message_parts(msg, version=version))


def decode_message(frame: Frame):
    """One decoded :class:`~repro.proto.wire.Frame` → its message.

    Raises :class:`~repro.proto.wire.ProtocolError` for unknown frame
    types, frame types newer than the frame's stamped version,
    truncated payloads, and trailing garbage.
    """
    try:
        kind = FrameType(frame.frame_type)
    except ValueError:
        raise ProtocolError(
            f"unknown frame type 0x{frame.frame_type:02x}"
        ) from None
    min_version = FRAME_MIN_VERSION.get(kind, 1)
    if frame.version < min_version:
        raise ProtocolError(
            f"{kind.name} frames require protocol v{min_version}, "
            f"got a v{frame.version} frame"
        )
    reader = PayloadReader(frame.payload)
    try:
        msg = _DECODERS[kind](reader, frame.version)
    except ProtocolError:
        raise
    except (ValueError, OverflowError) as exc:
        raise ProtocolError(f"malformed {kind.name} payload: {exc}") from exc
    reader.done()
    return msg

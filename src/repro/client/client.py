"""The edge-side client: encode + obfuscate locally, ship bit planes.

:class:`PriveHDClient` is the trusted half of the §III-C split.  It owns
the encoder (codebooks never leave this process) and an
:class:`~repro.core.InferenceObfuscator` (quantize + mask, the paper's
turnkey inference defense), talks the versioned binary protocol of
:mod:`repro.proto` to a remote :class:`~repro.serve.ServingFrontend`,
and — **by construction** — cannot put raw features on the wire:

* :meth:`predict` runs features through encode → quantize → mask →
  bit-pack *before* anything touches a frame; the only array the frame
  encoder ever receives is a ``d_hv``-dimensional hypervector batch;
* the protocol itself has no message that could carry a ``(d_in,)``
  feature vector, a codebook, or an encoder config —
  :func:`repro.proto.encode_message` serializes its closed vocabulary
  and nothing else;
* the client validates every encoded batch against the server's
  negotiated ``d_hv`` at the API boundary, so features passed to the
  wrong method fail loudly instead of leaking quietly.

``tests/client/test_privacy_boundary.py`` sniffs the actual bytes this
class emits and asserts neither the feature values nor any codebook
plane appears in any frame.

    >>> enc = encoder_from_config(manifest["encoder"])   # client-side
    >>> with PriveHDClient("127.0.0.1:7411", encoder=enc) as client:
    ...     client.model_info().backend
    'packed'
    ...     client.predict(X)                  # ships packed bit planes
"""

from __future__ import annotations

import socket
import time
from collections import deque

import numpy as np

from repro.backend.packed import PackedHV
from repro.core.inference_privacy import InferenceObfuscator, ObfuscationConfig
from repro.hd.encoder import Encoder, encoder_from_config
from repro.proto.messages import (
    ErrorReply,
    Hello,
    ModelInfo,
    ModelInfoRequest,
    ScoreRequest,
    ScoreResponse,
    Welcome,
    decode_message,
    encode_message,
)
from repro.proto.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    ProtocolError,
)

__all__ = ["PriveHDClient", "ServerError", "parse_address"]


class ServerError(RuntimeError):
    """A typed :class:`~repro.proto.ErrorReply` from the server.

    Attributes
    ----------
    code:
        The machine-readable error code
        (one of :data:`repro.proto.ERROR_CODES`).
    """

    def __init__(self, reply: ErrorReply):
        super().__init__(f"[{reply.code}] {reply.message}")
        self.code = reply.code
        self.reply = reply


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must look like 'host:port', got {address!r}"
        )
    return host, int(port)


class PriveHDClient:
    """Synchronous protocol client bound to a local encoder + obfuscator.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``(host, port)`` of a
        :class:`~repro.serve.ServingFrontend`.
    encoder:
        The client-side encoder (or an
        :meth:`~repro.hd.encoder.Encoder.config` dict to rebuild one —
        e.g. read from the artifact manifest the *deployment* shared
        with this edge device; the server never transmits it).  Without
        an encoder only the ``*_encoded`` methods work.
    obfuscation:
        Quantize/mask parameters of the client-side defense; the
        default quantizes to bipolar with no masking.  For a pruned
        (§III-B) model the deployment shares ``mask_seed``/``n_masked``
        so the client masks exactly the server's dead dimensions.
    model:
        Registry model name to score against (``None`` = the server's
        default).
    timeout:
        Socket timeout (seconds) for connect and each reply.
    connect_retries, retry_delay_s:
        Reconnect attempts while the server is still binding — what a
        CLI racing a just-started frontend needs.

    Attributes
    ----------
    protocol_version:
        The negotiated wire version (from the server's ``Welcome``).
    info:
        The served model's :class:`~repro.proto.ModelInfo`, fetched at
        connect; ``d_hv``/backend checks run against it.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        encoder: Encoder | dict | None = None,
        obfuscation: ObfuscationConfig | None = None,
        model: str | None = None,
        timeout: float = 30.0,
        connect_retries: int = 0,
        retry_delay_s: float = 0.25,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host, self.port = parse_address(address)
        self.model = model
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._request_id = 0
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._frames: deque = deque()
        if isinstance(encoder, dict):
            encoder = encoder_from_config(encoder)
        self.encoder = encoder
        self.obfuscator: InferenceObfuscator | None = None
        if encoder is not None:
            self.obfuscator = InferenceObfuscator(
                encoder, obfuscation or ObfuscationConfig()
            )
        elif obfuscation is not None:
            raise ValueError(
                "obfuscation parameters need an encoder to apply to"
            )

        self._sock = self._connect(connect_retries, retry_delay_s)
        try:
            self.protocol_version, self.server_info = self._handshake()
            self.info = self.model_info(model)
        except BaseException:
            self._sock.close()
            raise
        if encoder is not None and encoder.d_hv != self.info.d_hv:
            self.close()
            raise ValueError(
                f"client encoder produces {encoder.d_hv}-dim hypervectors "
                f"but the server serves d_hv={self.info.d_hv}"
            )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self, retries: int, delay_s: float) -> socket.socket:
        last: Exception | None = None
        for attempt in range(retries + 1):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                # Request/response frames are small; Nagle + delayed ACK
                # would serialize them at ~25 q/s per connection.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as exc:
                last = exc
                if attempt < retries:
                    time.sleep(delay_s)
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{retries + 1} attempt(s): {last}"
        ) from last

    def _send_frame(self, data: bytes) -> None:
        """The single point where bytes leave the client (tests hook it)."""
        self._sock.sendall(data)

    def _read_message(self):
        """The next message off the stream, via the shared FrameDecoder.

        Reads are buffered in 64 KiB chunks — one ``recv`` usually
        captures a whole response frame (header and payload together),
        and the per-request syscall/hop count is what bounds single-
        connection round-trip latency.  Framing errors surface as
        :class:`ProtocolError` exactly as they do server-side, because
        both ends split the stream with the same decoder.
        """
        while not self._frames:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    "server closed the connection mid-frame"
                )
            self._frames.extend(self._decoder.feed(chunk))
        return decode_message(self._frames.popleft())

    def _handshake(self) -> tuple[int, Welcome]:
        self._send_frame(encode_message(Hello(versions=SUPPORTED_VERSIONS)))
        reply = self._read_message()
        if isinstance(reply, ErrorReply):
            raise ServerError(reply)
        if not isinstance(reply, Welcome):
            raise ProtocolError(
                f"expected Welcome after Hello, got {type(reply).__name__}"
            )
        if reply.version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"server negotiated unsupported version {reply.version}"
            )
        return reply.version, reply

    def _request(self, message):
        """Send one message, return its (id-matched) non-error reply."""
        self._send_frame(
            encode_message(message, version=self.protocol_version)
        )
        reply = self._read_message()
        if isinstance(reply, ErrorReply):
            raise ServerError(reply)
        want = getattr(message, "request_id", 0)
        got = getattr(reply, "request_id", 0)
        if got != want:
            raise ProtocolError(
                f"response correlation id {got} does not match request {want}"
            )
        return reply

    def _next_id(self) -> int:
        self._request_id = (self._request_id + 1) % (1 << 32)
        return self._request_id

    # ------------------------------------------------------------------
    # feature entry points (encode + obfuscate locally)
    # ------------------------------------------------------------------
    def _prepare_wire_queries(self, X: np.ndarray):
        """Features → the obfuscated hypervector batch that ships.

        Packable quantizers (the paper's default) ship two uint64 bit
        planes — the 16×-smaller payload; non-packable ones (e.g.
        ``identity`` for an explicitly unprotected run) ship dense
        float32 encodings.  Raw ``X`` never reaches a frame either way.
        """
        if self.obfuscator is None:
            raise ValueError(
                "this client has no encoder; construct it with "
                "PriveHDClient(..., encoder=...) to send raw features, or "
                "use predict_encoded() with pre-encoded hypervectors"
            )
        X = np.atleast_2d(np.asarray(X))
        if X.shape[1] != self.encoder.d_in:
            raise ValueError(
                f"features have {X.shape[1]} columns but the encoder "
                f"expects d_in={self.encoder.d_in}"
            )
        if self.obfuscator.quantizer.packable:
            return self.obfuscator.prepare_packed(X)
        return self.obfuscator.prepare(X).astype(np.float32)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels for raw features; only obfuscated bits cross the wire."""
        return self._score(self._prepare_wire_queries(X)).predictions

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Eq. (4) score matrix for raw features (obfuscated on-wire)."""
        return self._score(
            self._prepare_wire_queries(X), want_scores=True
        ).scores

    # ------------------------------------------------------------------
    # encoded entry points (caller already holds hypervectors)
    # ------------------------------------------------------------------
    def _check_encoded(self, queries):
        if isinstance(queries, PackedHV):
            d = queries.d
        else:
            queries = np.atleast_2d(np.asarray(queries))
            d = queries.shape[1]
        if d != self.info.d_hv:
            raise ValueError(
                f"encoded queries must have d_hv={self.info.d_hv} "
                f"dimensions, got {d} — raw features do not belong here"
            )
        return queries

    def predict_encoded(self, queries) -> np.ndarray:
        """Labels for already-encoded queries (dense or ``PackedHV``).

        The caller is responsible for having quantized/masked to match
        the served model (e.g. via an
        :class:`~repro.core.InferenceObfuscator`); dimensionality is
        validated against the server's ``d_hv``.
        """
        return self._score(self._check_encoded(queries)).predictions

    def scores_encoded(self, queries) -> np.ndarray:
        """Score matrix for already-encoded queries."""
        return self._score(
            self._check_encoded(queries), want_scores=True
        ).scores

    def predict_encoded_many(
        self, batches, *, window: int = 8
    ) -> list[np.ndarray]:
        """Pipeline many encoded batches over this one connection.

        Keeps up to ``window`` :class:`~repro.proto.ScoreRequest` frames
        in flight and matches replies by correlation id (the server may
        reorder).  Pipelining is how a single connection approaches the
        server's batch throughput: the micro-batcher coalesces this
        client's in-flight requests with everyone else's instead of
        paying a full round trip per request.  Returns one prediction
        array per input batch, in input order.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        checked = [self._check_encoded(b) for b in batches]
        out: list[np.ndarray | None] = [None] * len(checked)
        index_of: dict[int, int] = {}
        next_send = 0
        completed = 0
        while completed < len(checked):
            while next_send < len(checked) and len(index_of) < window:
                rid = self._next_id()
                index_of[rid] = next_send
                self._send_frame(
                    encode_message(
                        ScoreRequest(
                            queries=checked[next_send],
                            model=self.model,
                            request_id=rid,
                        ),
                        version=self.protocol_version,
                    )
                )
                next_send += 1
            reply = self._read_message()
            if isinstance(reply, ErrorReply):
                raise ServerError(reply)
            if not isinstance(reply, ScoreResponse):
                raise ProtocolError(
                    f"expected ScoreResponse, got {type(reply).__name__}"
                )
            idx = index_of.pop(reply.request_id, None)
            if idx is None:
                raise ProtocolError(
                    f"unmatched correlation id {reply.request_id}"
                )
            out[idx] = reply.predictions
            completed += 1
        return out

    def _score(self, queries, *, want_scores: bool = False) -> ScoreResponse:
        request = ScoreRequest(
            queries=queries,
            model=self.model,
            want_scores=want_scores,
            request_id=self._next_id(),
        )
        reply = self._request(request)
        if not isinstance(reply, ScoreResponse):
            raise ProtocolError(
                f"expected ScoreResponse, got {type(reply).__name__}"
            )
        return reply

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def model_info(self, model: str | None = None) -> ModelInfo:
        """Describe a served model (``None`` = this client's target)."""
        reply = self._request(
            ModelInfoRequest(
                model=model if model is not None else self.model,
                request_id=self._next_id(),
            )
        )
        if not isinstance(reply, ModelInfo):
            raise ProtocolError(
                f"expected ModelInfo, got {type(reply).__name__}"
            )
        return reply

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def __enter__(self) -> "PriveHDClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        quantizer = (
            self.obfuscator.quantizer.name if self.obfuscator else None
        )
        return (
            f"PriveHDClient({self.host}:{self.port}, "
            f"model={self.model or self.info.name!r}, "
            f"quantizer={quantizer!r}, v{self.protocol_version})"
        )

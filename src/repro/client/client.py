"""The edge-side client: encode + obfuscate locally, ship bit planes.

:class:`PriveHDClient` is the trusted half of the §III-C split.  It owns
the encoder (codebooks never leave this process) and an
:class:`~repro.core.InferenceObfuscator` (quantize + mask, the paper's
turnkey inference defense), talks the versioned binary protocol of
:mod:`repro.proto` to a remote :class:`~repro.serve.ServingFrontend`,
and — **by construction** — cannot put raw features on the wire:

* :meth:`predict` runs features through encode → quantize → mask →
  bit-pack *before* anything touches a frame; the only array the frame
  encoder ever receives is a ``d_hv``-dimensional hypervector batch;
* the protocol itself has no message that could carry a ``(d_in,)``
  feature vector, a codebook, or an encoder config —
  :func:`repro.proto.encode_message` serializes its closed vocabulary
  and nothing else;
* the client validates every encoded batch against the server's
  negotiated ``d_hv`` at the API boundary, so features passed to the
  wrong method fail loudly instead of leaking quietly.

``tests/client/test_privacy_boundary.py`` sniffs the actual bytes this
class emits and asserts neither the feature values nor any codebook
plane appears in any frame.

    >>> enc = encoder_from_config(manifest["encoder"])   # client-side
    >>> with PriveHDClient("127.0.0.1:7411", encoder=enc) as client:
    ...     client.model_info().backend
    'packed'
    ...     client.predict(X)                  # ships packed bit planes
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from dataclasses import replace as dataclass_replace

import numpy as np

from repro.backend.packed import PackedHV
from repro.core.inference_privacy import InferenceObfuscator, ObfuscationConfig
from repro.hd.encoder import Encoder, encoder_from_config
from repro.proto.messages import (
    ErrorReply,
    Hello,
    ModelInfo,
    ModelInfoRequest,
    ScoreBatchRequest,
    ScoreBatchResponse,
    ScoreRequest,
    ScoreResponse,
    Welcome,
    decode_message,
)
from repro.proto.session import WireSession, sendmsg_all
from repro.proto.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    SUPPORTED_VERSIONS,
    ProtocolError,
)
from repro.serve.errors import TenantNotFound

__all__ = ["PriveHDClient", "ServerError", "parse_address"]


class ServerError(RuntimeError):
    """A typed :class:`~repro.proto.ErrorReply` from the server.

    Attributes
    ----------
    code:
        The machine-readable error code
        (one of :data:`repro.proto.ERROR_CODES`).
    retryable:
        Whether backing off and resending the same request can succeed
        (today: ``overloaded`` — the server shed load, it did not fail).
        A client constructed with ``max_retries > 0`` handles these
        itself; this surfaces only when retries are exhausted or
        disabled.
    """

    def __init__(self, reply: ErrorReply):
        super().__init__(f"[{reply.code}] {reply.message}")
        self.code = reply.code
        self.reply = reply

    @property
    def retryable(self) -> bool:
        """True when backing off and retrying the request can succeed."""
        return self.reply.retryable


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must look like 'host:port', got {address!r}"
        )
    return host, int(port)


class PriveHDClient:
    """Synchronous protocol client bound to a local encoder + obfuscator.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``(host, port)`` of a
        :class:`~repro.serve.ServingFrontend`.
    encoder:
        The client-side encoder (or an
        :meth:`~repro.hd.encoder.Encoder.config` dict to rebuild one —
        e.g. read from the artifact manifest the *deployment* shared
        with this edge device; the server never transmits it).  Without
        an encoder only the ``*_encoded`` methods work.
    obfuscation:
        Quantize/mask parameters of the client-side defense; the
        default quantizes to bipolar with no masking.  For a pruned
        (§III-B) model the deployment shares ``mask_seed``/``n_masked``
        so the client masks exactly the server's dead dimensions.
    model:
        Registry model name to score against (``None`` = the server's
        default).
    tenant:
        Fleet tenant to address (protocol v4; ``None`` = the server's
        default tenant, which is also what every pre-v4 request
        implicitly asks for).  A tenant-addressed client refuses to
        operate on a connection negotiated below v4 — silently falling
        back to the default tenant would answer from the *wrong
        model*, so the mismatch raises a typed
        :class:`~repro.proto.ProtocolError` at connect instead.  A
        server that does not host the key answers the non-retryable
        ``"unknown-tenant"`` code, re-raised here as
        :class:`~repro.serve.TenantNotFound`.
    timeout:
        Socket timeout (seconds) for connect and each reply.
    connect_retries, retry_delay_s:
        Reconnect attempts while the server is still binding — what a
        CLI racing a just-started frontend needs.
    max_retries:
        In-band resilience budget *per operation*: how many times one
        logical request may be resent after a retryable failure.  Two
        failure classes retry; nothing else does:

        * a typed ``overloaded`` reply — the server shed load; the
          client honors its ``retry_after_ms`` hint (never sleeping
          less), layered with exponential backoff;
        * a lost connection — the client reconnects, re-handshakes, and
          resends every request it never got an answer for.  This is
          safe because every message this client sends is an
          idempotent, stateless read (score/metadata) — resending a
          request whose reply was lost cannot double-apply anything.

        ``0`` (the default) keeps the historical fail-fast behavior.
    backoff_base_s, backoff_max_s, backoff_jitter:
        Retry pacing: attempt ``k`` waits
        ``min(base * 2**(k-1), max)`` plus a uniform jitter of up to
        ``backoff_jitter`` of that (decorrelates a thundering herd of
        clients all told to retry at once).  ``retry_after_ms`` from
        the server acts as a floor on the wait.
    deadline_ms:
        Default end-to-end deadline stamped on every scoring request
        (protocol v3+).  The server drops a request still queued past
        its deadline and answers ``deadline-exceeded`` instead of
        scoring stale work; older servers ignore it.
    versions:
        Protocol versions to offer in the ``Hello`` (default: every
        version this build speaks).  Pinning ``(1,)`` forces the v1
        dialect against any server — the cross-version tests' knob.

    Attributes
    ----------
    protocol_version:
        The negotiated wire version (from the server's ``Welcome``).
    info:
        The served model's :class:`~repro.proto.ModelInfo`, fetched at
        connect; ``d_hv``/backend checks run against it.  On a v2
        connection to a pruned model whose artifact recorded its
        deployment ``mask_seed``, a default-masked obfuscator is
        upgraded automatically to mask exactly the server's dead
        dimensions — no out-of-band mask channel needed.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        encoder: Encoder | dict | None = None,
        obfuscation: ObfuscationConfig | None = None,
        model: str | None = None,
        tenant: str | None = None,
        timeout: float = 30.0,
        connect_retries: int = 0,
        retry_delay_s: float = 0.25,
        max_retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_jitter: float = 0.1,
        deadline_ms: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        versions: tuple[int, ...] | None = None,
    ):
        self.host, self.port = parse_address(address)
        self.model = model
        self.tenant = tenant
        self.timeout = timeout
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_s <= 0 or backoff_max_s <= 0 or backoff_jitter < 0:
            raise ValueError(
                "backoff_base_s/backoff_max_s must be > 0 and "
                "backoff_jitter >= 0"
            )
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.backoff_jitter = backoff_jitter
        self.deadline_ms = deadline_ms
        self.reconnects = 0
        self.retries = 0
        self._rng = random.Random()
        self.max_frame_bytes = max_frame_bytes
        self.versions = (
            tuple(SUPPORTED_VERSIONS)
            if versions is None
            else tuple(sorted(int(v) for v in versions))
        )
        if not set(self.versions) <= set(SUPPORTED_VERSIONS):
            raise ValueError(
                f"this build only speaks versions {SUPPORTED_VERSIONS}, "
                f"cannot offer {self.versions}"
            )
        self._request_id = 0
        self._session = WireSession(
            "client", max_frame_bytes=max_frame_bytes
        )
        if isinstance(encoder, dict):
            encoder = encoder_from_config(encoder)
        self.encoder = encoder
        self.obfuscator: InferenceObfuscator | None = None
        if encoder is not None:
            self.obfuscator = InferenceObfuscator(
                encoder, obfuscation or ObfuscationConfig()
            )
        elif obfuscation is not None:
            raise ValueError(
                "obfuscation parameters need an encoder to apply to"
            )

        self._connect_retries = connect_retries
        self._retry_delay_s = retry_delay_s
        self._sock = self._connect(connect_retries, retry_delay_s)
        try:
            self.protocol_version, self.server_info = self._handshake()
            self._check_tenant_capability()
            self.info = self.model_info(model)
        except BaseException:
            self._sock.close()
            raise
        if encoder is not None and encoder.d_hv != self.info.d_hv:
            self.close()
            raise ValueError(
                f"client encoder produces {encoder.d_hv}-dim hypervectors "
                f"but the server serves d_hv={self.info.d_hv}"
            )
        self._adopt_served_mask()

    def _adopt_served_mask(self) -> None:
        """Mask like the server, from the wire-shared seed (v2).

        A pruned (§III-B) model only answers correctly when the client
        zeroes exactly the server's dead dimensions.  When the served
        artifact recorded its deployment ``mask_seed`` (and the
        connection speaks v2, so :class:`~repro.proto.ModelInfo`
        carries it), an obfuscator left at the default *unmasked*
        config is rebuilt to regenerate that mask locally — closing the
        ROADMAP's out-of-band-channel gap.  An explicitly configured
        mask (``n_masked > 0``) is always respected as given.
        """
        if (
            self.obfuscator is None
            or not self.info.is_pruned
            or self.info.mask_seed is None
            or self.obfuscator.config.n_masked != 0
        ):
            return
        config = dataclass_replace(
            self.obfuscator.config,
            n_masked=self.info.n_masked,
            mask_seed=self.info.mask_seed,
        )
        self.obfuscator = InferenceObfuscator(self.encoder, config)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self, retries: int, delay_s: float) -> socket.socket:
        last: Exception | None = None
        for attempt in range(retries + 1):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                # Request/response frames are small; Nagle + delayed ACK
                # would serialize them at ~25 q/s per connection.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as exc:
                last = exc
                if attempt < retries:
                    time.sleep(delay_s)
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{retries + 1} attempt(s): {last}"
        ) from last

    def _send_frame(self, data) -> None:
        """The single point where bytes leave the client (tests hook it)."""
        self._sock.sendall(data)

    def _send_message(self, message, *, version: int | None = None) -> None:
        """Encode + send one message, vectored (zero-copy fast path).

        The session stages header + scalars in its reusable scratch and
        hands back an iovec-style parts list; ``sendmsg`` gathers it —
        packed bit planes leave by reference, never concatenated in
        userspace.  A subclass that hooks :meth:`_send_frame` (the
        privacy tests sniff every frame there) still sees each frame
        whole: the vectored path steps aside whenever the hook is
        overridden.
        """
        parts = self._session.send_parts(message, version=version)
        if type(self)._send_frame is not PriveHDClient._send_frame:
            self._send_frame(b"".join(parts))
            return
        sendmsg_all(self._sock, parts)

    def _read_message(self):
        """The next message off the stream, via the shared WireSession.

        Pull-mode zero-copy reads: the session hands out the buffer to
        ``recv_into`` — between frames a fresh 64 KiB chunk (one recv
        usually captures a whole response frame, and payload views
        alias it with no copy), mid-payload the frame's own assembly
        buffer (large replies stream from the kernel straight to their
        final resting place).  Framing errors surface as
        :class:`ProtocolError` exactly as they do server-side, because
        both ends run the same sans-io core.
        """
        while True:
            frame = self._session.next_frame()
            if frame is not None:
                return decode_message(frame)
            buf = self._session.recv_buffer(65536)
            n = self._sock.recv_into(buf)
            if not n:
                raise ConnectionError(
                    "server closed the connection mid-frame"
                )
            self._session.commit(n)

    def _backoff(
        self, attempt: int, *, retry_after_ms: int | None = None
    ) -> None:
        """Sleep before retry ``attempt`` (1-based).

        Exponential in the attempt number, capped, jittered, and
        floored by the server's ``retry_after_ms`` hint when present —
        the server knows its drain rate better than we do.
        """
        delay = min(
            self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_max_s
        )
        if self.backoff_jitter:
            delay += self._rng.uniform(0, delay * self.backoff_jitter)
        if retry_after_ms is not None:
            delay = max(delay, retry_after_ms / 1e3)
        time.sleep(delay)

    def _reconnect(self) -> None:
        """Re-establish the connection and re-handshake.

        The wire session — buffered bytes, half-read frames, negotiated
        version — is discarded with the dead socket: replies can only
        be trusted within the connection that produced them, and the
        new connection negotiates from scratch.
        """
        self.close()
        self._session = WireSession(
            "client", max_frame_bytes=self.max_frame_bytes
        )
        self._sock = self._connect(
            self._connect_retries, self._retry_delay_s
        )
        self.protocol_version, self.server_info = self._handshake()
        self._check_tenant_capability()
        self.reconnects += 1

    def _check_tenant_capability(self) -> None:
        """Fail typed, not wrong, when a tenant needs a v4 connection.

        The v4 codec *drops* the tenant key when writing at an older
        version (so hand-built frames stay valid), which means a
        tenant-addressed request sent over a v3 connection would be
        answered by the server's default tenant — the wrong model,
        silently.  This client refuses that outcome up front.
        """
        if self.tenant is not None and self.protocol_version < 4:
            raise ProtocolError(
                f"tenant {self.tenant!r} needs protocol v4 but the "
                f"server negotiated v{self.protocol_version}; a pre-v4 "
                "server would silently answer from its default tenant"
            )

    def _deadline_ms(self) -> int | None:
        """The deadline to stamp on scoring requests (v3+ only)."""
        if self.protocol_version < 3:
            return None
        return self.deadline_ms

    def _handshake(self) -> tuple[int, Welcome]:
        # The Hello itself is a v1-layout frame stamped with the lowest
        # offered version, so even a v1-only server can parse the offer.
        self._send_message(
            Hello(versions=self.versions), version=min(self.versions)
        )
        reply = self._read_message()
        if isinstance(reply, ErrorReply):
            raise ServerError(reply)
        if not isinstance(reply, Welcome):
            raise ProtocolError(
                f"expected Welcome after Hello, got {type(reply).__name__}"
            )
        if reply.version not in self.versions:
            raise ProtocolError(
                f"server negotiated unsupported version {reply.version}"
            )
        self._session.adopt_version(reply.version)
        return reply.version, reply

    def _request(self, message):
        """Send one message, return its (id-matched) non-error reply.

        With ``max_retries > 0``: a retryable error reply (overloaded)
        is retried after backing off at least ``retry_after_ms``; a
        lost connection is retried after a reconnect + re-handshake.
        Both are safe for this protocol's idempotent reads — a resent
        request whose original reply was lost scores the same bits
        again, nothing more.
        """
        attempts = 0
        while True:
            try:
                self._send_message(message, version=self.protocol_version)
                reply = self._read_message()
            except (ConnectionError, TimeoutError, OSError):
                if attempts >= self.max_retries:
                    raise
                attempts += 1
                self.retries += 1
                self._backoff(attempts)
                self._reconnect()
                continue
            if isinstance(reply, ErrorReply):
                if reply.retryable and attempts < self.max_retries:
                    attempts += 1
                    self.retries += 1
                    self._backoff(
                        attempts, retry_after_ms=reply.retry_after_ms
                    )
                    continue
                raise self._typed_error(reply)
            want = getattr(message, "request_id", 0)
            got = getattr(reply, "request_id", 0)
            if got != want:
                raise ProtocolError(
                    f"response correlation id {got} does not match "
                    f"request {want}"
                )
            return reply

    def _typed_error(self, reply: ErrorReply) -> Exception:
        """The exception a non-retryable error reply raises.

        ``unknown-tenant`` becomes the same
        :class:`~repro.serve.TenantNotFound` the server raised — typed
        and non-retryable, so a caller can tell "this tenant does not
        exist" from every other server error without string matching.
        """
        if reply.code == "unknown-tenant":
            return TenantNotFound(reply.message, tenant=self.tenant)
        return ServerError(reply)

    def _next_id(self) -> int:
        self._request_id = (self._request_id + 1) % (1 << 32)
        return self._request_id

    # ------------------------------------------------------------------
    # feature entry points (encode + obfuscate locally)
    # ------------------------------------------------------------------
    def _prepare_wire_queries(self, X: np.ndarray):
        """Features → the obfuscated hypervector batch that ships.

        Packable quantizers (the paper's default) ship two uint64 bit
        planes — the 16×-smaller payload; non-packable ones (e.g.
        ``identity`` for an explicitly unprotected run) ship dense
        float32 encodings.  Raw ``X`` never reaches a frame either way.
        """
        if self.obfuscator is None:
            raise ValueError(
                "this client has no encoder; construct it with "
                "PriveHDClient(..., encoder=...) to send raw features, or "
                "use predict_encoded() with pre-encoded hypervectors"
            )
        X = np.atleast_2d(np.asarray(X))
        if X.shape[1] != self.encoder.d_in:
            raise ValueError(
                f"features have {X.shape[1]} columns but the encoder "
                f"expects d_in={self.encoder.d_in}"
            )
        if self.obfuscator.quantizer.packable:
            return self.obfuscator.prepare_packed(X)
        return self.obfuscator.prepare(X).astype(np.float32)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels for raw features; only obfuscated bits cross the wire."""
        return self._score(self._prepare_wire_queries(X)).predictions

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Eq. (4) score matrix for raw features (obfuscated on-wire)."""
        return self._score(
            self._prepare_wire_queries(X), want_scores=True
        ).scores

    # ------------------------------------------------------------------
    # encoded entry points (caller already holds hypervectors)
    # ------------------------------------------------------------------
    def _check_encoded(self, queries):
        if isinstance(queries, PackedHV):
            d = queries.d
        else:
            queries = np.atleast_2d(np.asarray(queries))
            d = queries.shape[1]
        if d != self.info.d_hv:
            raise ValueError(
                f"encoded queries must have d_hv={self.info.d_hv} "
                f"dimensions, got {d} — raw features do not belong here"
            )
        return queries

    def predict_encoded(self, queries) -> np.ndarray:
        """Labels for already-encoded queries (dense or ``PackedHV``).

        The caller is responsible for having quantized/masked to match
        the served model (e.g. via an
        :class:`~repro.core.InferenceObfuscator`); dimensionality is
        validated against the server's ``d_hv``.
        """
        return self._score(self._check_encoded(queries)).predictions

    def scores_encoded(self, queries) -> np.ndarray:
        """Score matrix for already-encoded queries."""
        return self._score(
            self._check_encoded(queries), want_scores=True
        ).scores

    def _pipelined_requests(
        self, n_items: int, window: int, build_message, expected: tuple
    ) -> list:
        """The sliding-window pipeline every bulk entry point shares.

        Keeps up to ``window`` frames in flight over this one
        connection and matches replies to requests by correlation id
        (the server may reorder).  ``build_message(index, request_id)``
        produces the item's request lazily at send time — so e.g.
        client-side encoding of chunk ``i+window`` overlaps the server
        scoring chunk ``i``.  Replies outside ``expected`` (beyond the
        always-raised :class:`ServerError`) fail the stream as a
        protocol violation.  Returns the reply messages in item order.

        With ``max_retries > 0`` the window self-heals: an
        ``overloaded`` reply re-queues just that item after its
        ``retry_after_ms``; a dead connection reconnects and replays
        every unacknowledged item (safe — all idempotent reads), each
        with a per-item attempt budget.
        """
        out: list = [None] * n_items
        index_of: dict[int, int] = {}
        attempts = [0] * n_items
        to_send: deque[int] = deque(range(n_items))
        completed = 0

        def recover(idx_attempt: int, *, retry_after_ms=None):
            # One more attempt for item idx_attempt, or give up loudly.
            if attempts[idx_attempt] >= self.max_retries:
                return False
            attempts[idx_attempt] += 1
            self.retries += 1
            self._backoff(
                attempts[idx_attempt], retry_after_ms=retry_after_ms
            )
            return True

        while completed < n_items:
            try:
                while to_send and len(index_of) < window:
                    idx = to_send[0]
                    rid = self._next_id()
                    # Building may raise (user data); only after it
                    # succeeds is the item claimed from the queue.
                    msg = build_message(idx, rid)
                    index_of[rid] = idx
                    to_send.popleft()
                    self._send_message(msg, version=self.protocol_version)
                reply = self._read_message()
            except (ConnectionError, TimeoutError, OSError):
                # The connection died with up to `window` unanswered
                # requests in flight.  Every one of them is an
                # idempotent read, so the correlation window is safe to
                # replay wholesale: reconnect, then resend each
                # unacknowledged item (budgeted per item, so a
                # poison-pill request cannot retry forever).
                survivors = sorted(index_of.values())
                if any(attempts[i] >= self.max_retries for i in survivors):
                    raise
                for i in survivors:
                    attempts[i] += 1
                self.retries += len(survivors) or 1
                self._backoff(max((attempts[i] for i in survivors), default=1))
                self._reconnect()
                index_of.clear()
                to_send.extendleft(reversed(survivors))
                continue
            if isinstance(reply, ErrorReply):
                idx = index_of.pop(reply.request_id, None)
                if (
                    idx is not None
                    and reply.retryable
                    and recover(idx, retry_after_ms=reply.retry_after_ms)
                ):
                    to_send.append(idx)  # resend after the backoff
                    continue
                raise self._typed_error(reply)
            if not isinstance(reply, expected):
                raise ProtocolError(
                    f"expected {' or '.join(t.__name__ for t in expected)}, "
                    f"got {type(reply).__name__}"
                )
            idx = index_of.pop(reply.request_id, None)
            if idx is None:
                raise ProtocolError(
                    f"unmatched correlation id {reply.request_id}"
                )
            out[idx] = reply
            completed += 1
        return out

    @staticmethod
    def _stack_encoded(items: list) -> tuple[PackedHV | np.ndarray, tuple]:
        """Stack checked sub-batches into one wire block + chunk counts."""
        packed = [isinstance(b, PackedHV) for b in items]
        if any(packed) and not all(packed):
            raise ValueError(
                "cannot mix PackedHV and dense sub-batches in one "
                "wire batch"
            )
        if all(packed):
            counts = tuple(b.n for b in items)
            if len(items) == 1:
                return items[0], counts
            block = PackedHV(
                signs=np.concatenate([b.signs for b in items], axis=0),
                mags=np.concatenate([b.mags for b in items], axis=0),
                d=items[0].d,
            )
            return block, counts
        counts = tuple(b.shape[0] for b in items)
        if len(items) == 1:
            return items[0], counts
        return np.concatenate(items, axis=0), counts

    def predict_encoded_many(
        self, batches, *, window: int = 8, wire_batch: int = 1
    ) -> list[np.ndarray]:
        """Pipeline many encoded batches over this one connection.

        Keeps up to ``window`` frames in flight and matches replies by
        correlation id (the server may reorder).  Pipelining is how a
        single connection approaches the server's batch throughput: the
        micro-batcher coalesces this client's in-flight requests with
        everyone else's instead of paying a full round trip per request.
        Returns one prediction array per input batch, in input order.

        ``wire_batch`` is the protocol-v2 amplifier: that many
        consecutive input batches are stacked into a single
        :class:`~repro.proto.ScoreBatchRequest` frame, so the server
        pays one frame decode and one scheduler submit per ``wire_batch``
        logical requests instead of one per request (the per-frame event
        -loop cost is what caps single-query socket throughput).  On a
        connection negotiated at v1 — an older server — ``wire_batch``
        degrades gracefully to the per-request v1 framing; results are
        identical either way.  All batches in one group must share a
        representation (all :class:`~repro.backend.PackedHV` or all
        dense).
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if wire_batch < 1:
            raise ValueError(f"wire_batch must be >= 1, got {wire_batch}")
        checked = [self._check_encoded(b) for b in batches]
        if wire_batch == 1 or self.protocol_version < 2:
            replies = self._pipelined_requests(
                len(checked),
                window,
                lambda i, rid: ScoreRequest(
                    queries=checked[i],
                    model=self.model,
                    tenant=self.tenant,
                    request_id=rid,
                    deadline_ms=self._deadline_ms(),
                ),
                (ScoreResponse,),
            )
            return [reply.predictions for reply in replies]
        # v2 path: groups of wire_batch sub-batches per frame.
        groups = [
            checked[start : start + wire_batch]
            for start in range(0, len(checked), wire_batch)
        ]

        def build(i: int, rid: int) -> ScoreBatchRequest:
            block, counts = self._stack_encoded(groups[i])
            return ScoreBatchRequest(
                queries=block,
                counts=counts,
                model=self.model,
                tenant=self.tenant,
                request_id=rid,
                deadline_ms=self._deadline_ms(),
            )

        replies = self._pipelined_requests(
            len(groups), window, build, (ScoreBatchResponse,)
        )
        out: list[np.ndarray] = []
        for group, reply in zip(groups, replies):
            parts = reply.split()
            if len(parts) != len(group):
                raise ProtocolError(
                    f"batch response carries {len(parts)} chunks for a "
                    f"{len(group)}-chunk request"
                )
            out.extend(parts)
        return out

    def predict_many(
        self, X: np.ndarray, *, chunk_size: int = 256, window: int = 4
    ) -> np.ndarray:
        """Labels for a large feature set, streamed in batched frames.

        The bulk-scoring entry point: features are encoded + obfuscated
        locally in ``chunk_size``-row chunks, each chunk ships as *one*
        frame (a v2 :class:`~repro.proto.ScoreBatchRequest`, or the
        equivalent :class:`~repro.proto.ScoreRequest` when the server
        only speaks v1), and up to ``window`` chunks stay in flight so
        client-side encoding overlaps server-side scoring.  Exactly as
        with :meth:`predict`, only obfuscated hypervector bits ever
        reach a frame.  Returns the ``(n,)`` prediction vector in row
        order.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if self.obfuscator is None:
            raise ValueError(
                "predict_many needs an encoder; construct the client "
                "with PriveHDClient(..., encoder=...)"
            )
        X = np.atleast_2d(np.asarray(X))
        if X.shape[1] != self.encoder.d_in:
            raise ValueError(
                f"features have {X.shape[1]} columns but the encoder "
                f"expects d_in={self.encoder.d_in}"
            )
        starts = list(range(0, X.shape[0], chunk_size))
        if not starts:
            return np.zeros(0, dtype=np.int64)

        def build(i: int, rid: int):
            # Encoding happens here, at send time, so preparing chunk
            # i+window overlaps the server scoring chunk i.
            queries = self._prepare_wire_queries(
                X[starts[i] : starts[i] + chunk_size]
            )
            if self.protocol_version < 2:
                return ScoreRequest(
                    queries=queries, model=self.model, request_id=rid
                )
            n_rows = (
                queries.n
                if isinstance(queries, PackedHV)
                else queries.shape[0]
            )
            return ScoreBatchRequest(
                queries=queries,
                counts=(n_rows,),
                model=self.model,
                tenant=self.tenant,
                request_id=rid,
                deadline_ms=self._deadline_ms(),
            )

        replies = self._pipelined_requests(
            len(starts), window, build, (ScoreResponse, ScoreBatchResponse)
        )
        return np.concatenate([reply.predictions for reply in replies])

    def _score(self, queries, *, want_scores: bool = False) -> ScoreResponse:
        request = ScoreRequest(
            queries=queries,
            model=self.model,
            tenant=self.tenant,
            want_scores=want_scores,
            request_id=self._next_id(),
            deadline_ms=self._deadline_ms(),
        )
        reply = self._request(request)
        if not isinstance(reply, ScoreResponse):
            raise ProtocolError(
                f"expected ScoreResponse, got {type(reply).__name__}"
            )
        return reply

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def model_info(self, model: str | None = None) -> ModelInfo:
        """Describe a served model (``None`` = this client's target)."""
        reply = self._request(
            ModelInfoRequest(
                model=model if model is not None else self.model,
                tenant=self.tenant,
                request_id=self._next_id(),
            )
        )
        if not isinstance(reply, ModelInfo):
            raise ProtocolError(
                f"expected ModelInfo, got {type(reply).__name__}"
            )
        return reply

    def wire_stats(self) -> dict:
        """Copy/throughput counters of this connection's wire session.

        ``rx_frames``/``tx_frames`` count frames through the session;
        ``rx_copied_bytes``/``tx_copied_bytes`` count payload bytes
        that crossed a userspace copy (decoder reassembly, scalar
        staging) — array planes moving by reference never appear here.
        The wire-profile benchmark divides these to report
        bytes-copied-per-frame.
        """
        return self._session.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def __enter__(self) -> "PriveHDClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        quantizer = (
            self.obfuscator.quantizer.name if self.obfuscator else None
        )
        return (
            f"PriveHDClient({self.host}:{self.port}, "
            f"model={self.model or self.info.name!r}, "
            f"quantizer={quantizer!r}, v{self.protocol_version})"
        )

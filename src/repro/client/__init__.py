"""The trusted edge side of the split deployment.

:class:`PriveHDClient` encodes, quantizes, masks, and bit-packs locally
(the §III-C client-side defense) and ships only obfuscated hypervector
bit planes to a remote :class:`~repro.serve.ServingFrontend` over the
versioned binary protocol — raw features and codebooks never leave this
process.
"""

from repro.client.client import PriveHDClient, ServerError, parse_address

__all__ = ["PriveHDClient", "ServerError", "parse_address"]
